"""Deterministic fault injection for the distributed execution layers.

Chaos engineering needs faults that are **schedulable** (fire at a named
site, optionally at a named shard), **bounded** (fire exactly ``count``
times across the whole process tree, no matter how many workers race) and
**inert by default** (a production run with no plan installed pays one
``None`` check per site).  This module replaces the original single-purpose
``REPRO_DIST_FAULT`` environment hook (which could only SIGKILL one worker)
with a :class:`FaultPlan`: a list of :class:`FaultSpec` entries naming

* a **site** — ``shard.claim`` (a worker picked up a batch), ``shard.run``
  (a worker is about to evaluate one shard), ``outcome.ship`` (a worker
  computed its batch and is about to return it) and ``shm.publish`` (the
  coordinator is about to publish a shared-memory segment);
* a **kind** — ``crash`` (SIGKILL the worker), ``exit`` (hard
  ``os._exit``, the ``broken-pool`` variant with an exit code), ``hang``
  (sleep far past any deadline, exercising the watchdog), ``slow`` (sleep
  ``delay_seconds`` then continue), ``error`` (raise
  :class:`FaultInjected`) and ``torn`` (pre-write a torn shared-memory
  segment so the publisher must detect and republish it);
* optional **targeting** (``shard=``) and a firing budget (``count=``).

Cross-process exactly-``count`` semantics use a *claim directory*: firing a
spec requires atomically creating one of its ``count`` claim files
(``O_CREAT | O_EXCL``), so concurrent workers can race for a fault but only
the winners inject it.  :meth:`FaultPlan.arm` allocates the directory; the
armed plan is shipped to workers inside the
:class:`~repro.distributed.runner.WorkerPayload` (and is installable from
the ``REPRO_FAULTS`` environment variable or the ``--fault-plan`` CLI flag
— a JSON document, an ``@path`` reference, or the compact
``site:kind[:key=value...]`` grammar).

Process-killing kinds (``crash``, ``exit``, ``hang``, ``error``) only fire
inside *worker* processes: the coordinator — including the quarantine
path, which re-executes a poison shard inline — is immune by construction,
so a run always has a process left standing to finish the job.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "FAULTS_ENV",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "current_plan",
    "install_plan",
    "resolve_fault_plan",
    "fire",
]

#: Environment variable carrying a fault plan (JSON, ``@path`` or compact
#: spec grammar) injected into every distributed run that does not pass an
#: explicit plan — the hook chaos runs and the CI smoke use.
FAULTS_ENV = "REPRO_FAULTS"

#: Injection sites wired through the distributed layers.
FAULT_SITES = ("shard.claim", "shard.run", "outcome.ship", "shm.publish")

#: Fault kinds.  ``broken-pool`` is accepted as an alias of ``exit``.
FAULT_KINDS = ("crash", "exit", "hang", "slow", "error", "torn")

#: Kinds that take a process (or the run) down and therefore only ever
#: fire inside worker processes, never in the coordinator.
_WORKER_ONLY_KINDS = frozenset({"crash", "exit", "hang", "error"})

#: Default sleep per kind when the spec does not set ``delay_seconds``.
_DEFAULT_DELAYS = {"hang": 600.0, "slow": 0.25}


class FaultInjected(RuntimeError):
    """The exception raised by an ``error``-kind fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One schedulable fault: where, what, and how often.

    Attributes
    ----------
    site:
        Injection site (one of :data:`FAULT_SITES`).
    kind:
        Fault kind (one of :data:`FAULT_KINDS`; ``broken-pool`` is
        normalised to ``exit``).
    shard:
        Only fire when the site reports this shard id (``None`` matches
        any).  Sites without a shard in scope (``shm.publish``,
        ``outcome.ship``) never match a shard-targeted spec.
    count:
        Total firings across the whole process tree (claimed atomically).
    delay_seconds:
        Sleep length for ``slow``/``hang`` (defaults: 0.25 s / 600 s).
    """

    site: str
    kind: str
    shard: int | None = None
    count: int = 1
    delay_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind == "broken-pool":
            object.__setattr__(self, "kind", "exit")
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; valid sites: "
                + ", ".join(FAULT_SITES)
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid kinds: "
                + ", ".join(FAULT_KINDS + ("broken-pool",))
            )
        if self.kind == "torn" and self.site != "shm.publish":
            raise ValueError("torn-write faults only exist at the shm.publish site")
        if self.count < 1:
            raise ValueError("count must be positive")

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.shard is not None:
            doc["shard"] = int(self.shard)
        if self.count != 1:
            doc["count"] = int(self.count)
        if self.delay_seconds is not None:
            doc["delay_seconds"] = float(self.delay_seconds)
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FaultSpec":
        return cls(
            site=str(doc["site"]),
            kind=str(doc["kind"]),
            shard=None if doc.get("shard") is None else int(doc["shard"]),
            count=int(doc.get("count", 1)),
            delay_seconds=(
                None
                if doc.get("delay_seconds") is None
                else float(doc["delay_seconds"])
            ),
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the compact grammar ``site:kind[:key=value...]``.

        Examples: ``shard.run:crash``, ``shard.run:hang:shard=3``,
        ``shard.claim:slow:delay=0.5:count=2``, ``shm.publish:torn``.
        """
        parts = [p.strip() for p in text.split(":") if p.strip()]
        if len(parts) < 2:
            raise ValueError(
                f"invalid fault spec {text!r}: expected site:kind[:key=value...]"
            )
        kwargs: Dict[str, object] = {"site": parts[0], "kind": parts[1]}
        for option in parts[2:]:
            if "=" not in option:
                raise ValueError(
                    f"invalid fault option {option!r} in {text!r}: "
                    "expected key=value"
                )
            key, value = option.split("=", 1)
            key = key.strip()
            if key == "shard":
                kwargs["shard"] = int(value)
            elif key == "count":
                kwargs["count"] = int(value)
            elif key in ("delay", "delay_seconds"):
                kwargs["delay_seconds"] = float(value)
            else:
                raise ValueError(
                    f"unknown fault option {key!r} in {text!r}: "
                    "valid options are shard=, count=, delay="
                )
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered schedule of faults, armable for cross-process injection.

    A plan is inert until installed (:func:`install_plan`); the distributed
    coordinator arms it (:meth:`arm` — allocating the claim directory that
    makes firing exactly-``count`` across processes), installs it for its
    own sites and ships it to workers inside the task payload.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int | None = None
    claim_dir: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- construction ---------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON, an ``@path`` JSON file, or compact specs.

        The compact form is a comma-separated list of
        :meth:`FaultSpec.parse` entries, e.g.
        ``"shard.run:crash,shm.publish:torn"``.
        """
        text = text.strip()
        if not text:
            raise ValueError("empty fault plan")
        if text.startswith("@"):
            with open(text[1:], "r", encoding="utf-8") as fh:
                text = fh.read().strip()
        if text.startswith("{") or text.startswith("["):
            try:
                doc = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid fault-plan JSON: {exc}") from exc
            return cls.from_dict(doc)
        return cls(
            specs=tuple(FaultSpec.parse(part) for part in text.split(",") if part.strip())
        )

    @classmethod
    def schedule(
        cls,
        seed: int,
        n_faults: int = 1,
        sites: Sequence[str] = ("shard.claim", "shard.run", "outcome.ship"),
        kinds: Sequence[str] = ("crash", "exit", "slow", "error"),
        delay_seconds: float | None = None,
    ) -> "FaultPlan":
        """A seeded random schedule (chaos runs): ``n_faults`` site/kind draws.

        The draw is a pure function of ``seed``, so a chaos failure is
        replayable by seed alone.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        specs = tuple(
            FaultSpec(
                site=str(rng.choice(list(sites))),
                kind=str(rng.choice(list(kinds))),
                delay_seconds=delay_seconds,
            )
            for _ in range(int(n_faults))
        )
        return cls(specs=specs, seed=int(seed))

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"specs": [s.to_dict() for s in self.specs]}
        if self.seed is not None:
            doc["seed"] = int(self.seed)
        if self.claim_dir is not None:
            doc["claim_dir"] = str(self.claim_dir)
        return doc

    @classmethod
    def from_dict(cls, doc) -> "FaultPlan":
        if isinstance(doc, list):
            doc = {"specs": doc}
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in doc.get("specs", [])),
            seed=None if doc.get("seed") is None else int(doc["seed"]),
            claim_dir=doc.get("claim_dir"),
        )

    # -- arming / claims ------------------------------------------------------
    def arm(self) -> "FaultPlan":
        """Allocate the claim directory enforcing cross-process budgets.

        Returns an armed copy (idempotent when already armed); the returned
        plan — including the directory path — is what must be shipped to
        worker processes.
        """
        if self.claim_dir is not None:
            return self
        return replace(self, claim_dir=tempfile.mkdtemp(prefix="repro-faults-"))

    def _claim(self, spec_index: int, count: int) -> bool:
        """Atomically claim one of the spec's firing slots.

        Without a claim directory (an unarmed plan) a per-process budget is
        kept instead — single-process tests need no filesystem.
        """
        if self.claim_dir is None:
            key = id(self), spec_index
            fired = _LOCAL_FIRED.get(key, 0)
            if fired >= count:
                return False
            _LOCAL_FIRED[key] = fired + 1
            return True
        for slot in range(count):
            path = os.path.join(self.claim_dir, f"spec{spec_index}.{slot}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # claim dir vanished — stand down, never loop
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return True
        return False

    def fired(self) -> int:
        """How many faults have been claimed so far (armed plans only)."""
        if self.claim_dir is None or not os.path.isdir(self.claim_dir):
            return 0
        return len(os.listdir(self.claim_dir))


#: Unarmed-plan per-process firing budgets (see :meth:`FaultPlan._claim`).
_LOCAL_FIRED: Dict[Tuple[int, int], int] = {}

#: The installed plan of this process (``None`` = injection disabled).
_ACTIVE: List[FaultPlan | None] = [None]


def install_plan(plan: FaultPlan | None) -> None:
    """Install (or, with ``None``, clear) this process's active plan."""
    _ACTIVE[0] = plan


def current_plan() -> FaultPlan | None:
    """The active plan of this process, if any."""
    return _ACTIVE[0]


def resolve_fault_plan(plan: object) -> FaultPlan | None:
    """Normalise a fault-plan argument (plan / spec string / env fallback).

    ``None`` falls back to the :data:`FAULTS_ENV` environment variable so
    chaos runs can inject faults into any entry point without touching
    call sites; an empty/unset environment resolves to no plan.
    """
    if plan is None:
        env = os.environ.get(FAULTS_ENV, "").strip()
        return FaultPlan.parse(env) if env else None
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    if isinstance(plan, dict) or isinstance(plan, list):
        return FaultPlan.from_dict(plan)
    raise TypeError(
        f"faults must be a FaultPlan, a spec string or None, got "
        f"{type(plan).__name__}"
    )


def _note(name: str) -> None:
    """Count an injection on the data-plane counters (ships with outcomes)."""
    from repro.distributed.shm import note_event

    note_event(name)


def fire(
    site: str,
    shard: int | None = None,
    tear: Callable[[], None] | None = None,
) -> None:
    """Injection point: execute any matching armed fault at ``site``.

    Called from the distributed layers with the site name, the shard id
    when one is in scope, and — at ``shm.publish`` — a ``tear`` callback
    that pre-writes a torn segment (the ``torn`` kind's payload).  A
    process with no installed plan returns immediately.
    """
    plan = _ACTIVE[0]
    if plan is None:
        return
    in_worker = multiprocessing.parent_process() is not None
    for index, spec in enumerate(plan.specs):
        if spec.site != site:
            continue
        if spec.shard is not None and spec.shard != shard:
            continue
        if spec.kind in _WORKER_ONLY_KINDS and not in_worker:
            # The coordinator (and the quarantine/inline path it runs) is
            # immune to process-killing faults by construction.
            continue
        if not plan._claim(index, spec.count):
            continue
        _note(f"faults_injected_{spec.kind}")
        _execute(spec, tear)


def _execute(spec: FaultSpec, tear: Callable[[], None] | None) -> None:
    if spec.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.kind == "exit":
        os._exit(13)
    elif spec.kind in ("hang", "slow"):
        time.sleep(
            spec.delay_seconds
            if spec.delay_seconds is not None
            else _DEFAULT_DELAYS[spec.kind]
        )
    elif spec.kind == "error":
        raise FaultInjected(
            f"injected fault at {spec.site}"
            + (f" (shard {spec.shard})" if spec.shard is not None else "")
        )
    elif spec.kind == "torn":
        if tear is not None:
            tear()
