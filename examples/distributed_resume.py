#!/usr/bin/env python3
"""Walkthrough: sharded multi-process detection with checkpoint/resume.

A whole-genome ``nCr(M, k)`` sweep can run for days; ``repro.distributed``
turns it from "hope the process lives" into a resumable, machine-saturating
job.  This walkthrough demonstrates the three guarantees on a small planted
dataset:

1. **shard/worker invariance** — the same top-k, bit for bit, whether the
   sweep runs in one process or across a pool of OS workers;
2. **crash safety** — the run checkpoints an atomic JSON shard ledger after
   every completed shard; we simulate a kill by stopping after a shard
   budget and inspect what survived on disk;
3. **resume** — the continued run restores the completed shards from the
   ledger, evaluates only the remainder and reports the identical result.

Run with::

    PYTHONPATH=src python examples/distributed_resume.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    EpistasisDetector,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
)
from repro.core.detector import DetectorConfig
from repro.distributed import run_distributed
from repro.engine import DenseRangeSource

PLANTED = (7, 19, 33)


def main() -> None:
    dataset = generate_dataset(
        SyntheticConfig(
            n_snps=40,
            n_samples=1024,
            interaction=PlantedInteraction(
                snps=PLANTED, model="threshold", baseline=0.05, effect=0.9
            ),
            seed=9,
        )
    )

    # -- 1. worker invariance ------------------------------------------------
    print("== 1. shard/worker invariance ==")
    single = EpistasisDetector(approach="cpu-v4", top_k=5).detect(dataset)
    sharded = EpistasisDetector(approach="cpu-v4", top_k=5).detect(
        dataset, workers=2
    )
    identical = [(i.snps, i.score) for i in single.top] == [
        (i.snps, i.score) for i in sharded.top
    ]
    print(f"in-process best : {single.best}")
    print(f"2-process best  : {sharded.best}")
    print(f"top-5 bit-identical: {identical}")
    dist = sharded.stats.extra["distributed"]
    print(f"shards: {dist['n_shards']} ({dist['strategy']} plan), "
          f"workers: {dist['workers']}\n")

    # -- 2. simulated kill mid-run -------------------------------------------
    print("== 2. kill mid-run (shard budget) ==")
    workdir = Path(tempfile.mkdtemp(prefix="repro-distributed-"))
    ledger_path = workdir / "sweep.ckpt.json"
    config = DetectorConfig(approach="cpu-v4", top_k=5)
    source = DenseRangeSource(dataset.n_snps, 3)

    partial = run_distributed(
        dataset,
        source,
        config=config,
        workers=1,
        checkpoint=str(ledger_path),
        shard_budget=10,  # ... and then the machine "dies"
    )
    print(f"run interrupted after {partial.shards_done}/{partial.n_shards} "
          f"shards ({partial.items_evaluated}/{partial.items_total} tables)")
    ledger = json.loads(ledger_path.read_text())
    print(f"ledger on disk : {ledger_path}")
    print(f"  completed={ledger['completed']}, "
          f"shards recorded={sorted(map(int, ledger['shards']))}\n")

    # -- 3. resume -----------------------------------------------------------
    print("== 3. resume ==")
    resumed = run_distributed(
        dataset,
        source,
        config=config,
        workers=1,
        checkpoint=str(ledger_path),
        resume=True,
    )
    print(f"restored {resumed.shards_restored} shards "
          f"({resumed.items_restored} tables) from the ledger; "
          f"evaluated only {resumed.items_evaluated} new tables")
    same = [(i.snps, i.score) for i in resumed.result.top] == [
        (i.snps, i.score) for i in single.top
    ]
    print(f"resumed best    : {resumed.result.best}")
    print(f"identical to the uninterrupted run: {same}")
    assert same and identical and resumed.completed
    print("\nplanted interaction:", PLANTED,
          "->", "recovered" if resumed.result.best_snps == PLANTED else "missed")


if __name__ == "__main__":
    main()
