#!/usr/bin/env python3
"""Realistic analysis pipeline: QC → pairwise screen → exhaustive 3-way search.

The exhaustive three-way search is cubic in the SNP count, so production
pipelines clean the input first and often use a cheap exhaustive *pairwise*
pass to prioritise a candidate panel before committing to the cubic scan.
This example chains the library's pieces into that workflow:

1. quality control on a raw genotype matrix with missing calls
   (imputation, MAF / call-rate / Hardy–Weinberg filters);
2. an exhaustive pairwise screen (9x2 tables, K2 score) to shortlist the
   SNPs that participate in the strongest pairs;
3. the paper's three-way detector restricted to the shortlist, with the
   result checked against the full three-way search over all cleaned SNPs.

Run with::

    python examples/qc_prefilter_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EpistasisDetector,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
)
from repro.datasets import apply_qc


def make_raw_cohort(planted=(6, 17, 33), n_snps=48, n_samples=3000, seed=5):
    """A synthetic cohort with a planted interaction, missing calls and junk SNPs."""
    dataset = generate_dataset(
        SyntheticConfig(
            n_snps=n_snps,
            n_samples=n_samples,
            interaction=PlantedInteraction(
                snps=planted, model="threshold", baseline=0.04, effect=0.85
            ),
            seed=seed,
        )
    )
    rng = np.random.default_rng(seed)
    raw = dataset.genotypes.astype(np.int8).copy()
    # Sprinkle missing calls, add a low-call-rate SNP and a monomorphic SNP.
    mask = rng.random(raw.shape) < 0.01
    raw[mask] = -1
    raw[0, : n_samples // 3] = -1
    raw[1, :] = 0
    return raw, dataset.phenotypes, list(dataset.snp_names), planted


def main() -> None:
    raw, phenotypes, snp_names, planted = make_raw_cohort()
    print(f"raw cohort: {raw.shape[0]} SNPs x {raw.shape[1]} samples, planted {planted}")

    # -- step 1: quality control -------------------------------------------------
    # Passing the original SNP names keeps results traceable to the raw matrix
    # even after QC drops some markers.
    cohort, report = apply_qc(
        raw, phenotypes, snp_names, min_maf=0.05, min_call_rate=0.9
    )
    print(f"step 1  {report.summary()}")
    name_to_index = {name: i for i, name in enumerate(cohort.snp_names)}
    planted_names = {f"snp{idx:04d}" for idx in planted}

    # -- step 2: pairwise screen (the unified detector at order 2) ----------------
    pairwise = EpistasisDetector(approach="cpu-v2", order=2, top_k=15).detect(cohort)
    candidate_names = sorted({name for inter in pairwise.top for name in inter.snp_names})
    print(f"step 2  pairwise screen kept {len(candidate_names)} candidate SNPs "
          f"({pairwise.stats.n_combinations} pairs evaluated)")
    print(f"        planted SNPs in the candidate panel: "
          f"{planted_names <= set(candidate_names)}")

    # -- step 3: three-way search on the shortlist ---------------------------------
    panel = cohort.subset_snps([name_to_index[n] for n in candidate_names])
    three_way = EpistasisDetector(approach="cpu-v4", n_workers=2, top_k=3).detect(panel)
    best_names = tuple(sorted(three_way.best.snp_names))
    print(f"step 3  best triplet on the panel: {best_names} "
          f"(score {three_way.best_score:.3f})")

    # -- validation: the shortcut found the same interaction as the full scan ------
    full = EpistasisDetector(approach="cpu-v4", n_workers=2, top_k=3).detect(cohort)
    full_names = tuple(sorted(full.best.snp_names))
    speedup = full.stats.n_combinations / max(1, three_way.stats.n_combinations)
    print(f"check   full three-way scan best: {full_names}; "
          f"panel scan evaluated {speedup:.1f}x fewer triplets")
    if best_names == full_names and set(best_names) == planted_names:
        print("SUCCESS: QC + pairwise prefilter + three-way search recovered the "
              "planted interaction at a fraction of the cost")
    else:
        print("note: prefilter and full scan disagree on this cohort — rerun with a "
              "larger candidate panel (top_k) for a stricter guarantee")


if __name__ == "__main__":
    main()
