#!/usr/bin/env python3
"""Retention-vs-recall study of the staged search pipeline.

The exhaustive third-order search evaluates ``nCr(M, 3)`` frequency tables;
the staged pipeline screens at order 2 first and expands only over the
retained SNPs, evaluating ``nCr(keep, 3)`` tables instead.  The retention
budget ``keep`` is the knob: too small and the screen may drop an
interacting SNP whose pairwise signal is weak (recall loss), large and the
expand stage approaches the exhaustive cost again.

This study sweeps the budget on datasets with planted interactions of both
kinds — a *threshold* model (strong marginal pair signal, easy to screen)
and a *XOR-like* model (purely epistatic, the adversarial case for any
low-order filter) — and reports, per budget:

* whether the planted triplet is recovered (recall),
* the fraction of the exhaustive order-3 space evaluated,
* the measured wall-clock speedup, and
* the analytical speedup the per-stage cost model projects.

Run with::

    PYTHONPATH=src python examples/staged_search.py
"""

from __future__ import annotations

import time

from repro import (
    EpistasisDetector,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
)
from repro.perfmodel import estimate_staged_search

PLANTED = (7, 19, 33)
BUDGETS = (6, 8, 12, 16, 24, 32, 48)


def make_dataset(model: str):
    return generate_dataset(
        SyntheticConfig(
            n_snps=48,
            n_samples=2048,
            interaction=PlantedInteraction(
                snps=PLANTED, model=model, baseline=0.05, effect=0.9
            ),
            seed=9,
        )
    )


def study(model: str) -> None:
    dataset = make_dataset(model)
    detector = EpistasisDetector(approach="cpu-v4", order=3, n_workers=2, top_k=5)

    started = time.perf_counter()
    exhaustive = detector.detect(dataset)
    exhaustive_seconds = time.perf_counter() - started
    total_tables = exhaustive.stats.n_combinations
    print(f"\n=== penetrance model: {model} ===")
    print(
        f"exhaustive: best {exhaustive.best_snps} "
        f"({total_tables} tables, {exhaustive_seconds:.3f} s)"
    )

    print(f"{'keep':>5s} {'tables':>7s} {'frac':>6s} {'recall':>6s} "
          f"{'speedup':>8s} {'modelled':>9s}")
    for keep in BUDGETS:
        started = time.perf_counter()
        staged = detector.detect_staged(dataset, screen_order=2, keep_snps=keep)
        staged_seconds = time.perf_counter() - started
        modelled = estimate_staged_search(
            dataset.n_snps, dataset.n_samples, keep_snps=keep
        )["modelled_speedup"]
        recall = tuple(sorted(staged.best_snps)) == PLANTED
        print(
            f"{keep:>5d} {staged.final_order_evaluated:>7d} "
            f"{staged.evaluated_fraction:>6.1%} {str(recall):>6s} "
            f"{exhaustive_seconds / staged_seconds:>7.1f}x {modelled:>8.1f}x"
        )


def main() -> None:
    for model in ("threshold", "xor"):
        study(model)
    print(
        "\nThe threshold interaction survives aggressive pruning (its SNPs"
        "\ncarry pairwise signal); the XOR interaction needs a generous"
        "\nbudget — the classic screening trade-off the pipeline exposes as"
        "\na single knob."
    )


if __name__ == "__main__":
    main()
