#!/usr/bin/env python3
"""Personalised-screening scenario: score a candidate SNP panel.

The paper's closing argument (§V-D) is that once the interacting SNPs of a
disease are known, a low-power device is enough to "verify if a patient has a
high risk of developing a certain disease … by knowing a priori which SNPs to
evaluate".  This example mimics that workflow:

1. an *exploratory* exhaustive run over a cohort identifies the interacting
   triplet and its high-risk genotype combinations;
2. a *screening* step evaluates new individuals against the learned risk
   table — a constant-time lookup, no exhaustive search needed;
3. the example reports how well the screening separates cases from controls
   on a held-out cohort, and which catalogued device would be the most
   energy-efficient choice for each phase.

Run with::

    python examples/gwas_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EpistasisDetector,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
)
from repro.core.contingency import contingency_oracle
from repro.devices import list_devices
from repro.perfmodel import energy_efficiency


def learn_risk_table(dataset, triplet) -> np.ndarray:
    """Per genotype-combination case probability learned from the cohort."""
    table = contingency_oracle(dataset.genotypes, dataset.phenotypes, triplet)
    totals = table.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        risk = np.where(totals > 0, table[:, 1] / np.maximum(totals, 1), 0.5)
    return risk


def screen(dataset, triplet, risk_table, threshold: float = 0.5) -> np.ndarray:
    """Predicted case/control labels for every sample of a cohort."""
    codes = np.zeros(dataset.n_samples, dtype=np.int64)
    for snp in triplet:
        codes = codes * 3 + dataset.genotypes[snp].astype(np.int64)
    return (risk_table[codes] >= threshold).astype(np.int8)


def main() -> None:
    planted = (5, 23, 41)
    base = dict(
        n_snps=48,
        interaction=PlantedInteraction(
            snps=planted, model="threshold", baseline=0.05, effect=0.9
        ),
    )
    discovery = generate_dataset(SyntheticConfig(n_samples=4096, seed=1, **base))
    holdout = generate_dataset(SyntheticConfig(n_samples=1024, seed=99, **base))

    print("phase 1: exploratory exhaustive search on the discovery cohort")
    detector = EpistasisDetector(approach="cpu-v4", n_workers=2, top_k=3)
    result = detector.detect(discovery)
    found = tuple(sorted(result.best_snps))
    print(f"  best interaction: {result.best} (planted: {planted})")
    print(f"  throughput: {result.stats.elements_per_second:.3e} combs x samples / s")

    print("\nphase 2: screening the held-out cohort with the learned risk table")
    risk = learn_risk_table(discovery, found)
    predictions = screen(holdout, found, risk)
    accuracy = float((predictions == holdout.phenotypes).mean())
    sensitivity = float(
        (predictions[holdout.phenotypes == 1] == 1).mean()
    )
    specificity = float(
        (predictions[holdout.phenotypes == 0] == 0).mean()
    )
    print(f"  accuracy={accuracy:.3f}  sensitivity={sensitivity:.3f}  specificity={specificity:.3f}")

    print("\nphase 3: which catalogued device suits each phase? (model, §V-D)")
    ranked = sorted(
        list_devices("all"), key=lambda d: -energy_efficiency(d)
    )
    best_efficiency = ranked[0]
    print(f"  most energy-efficient device: {best_efficiency.key} ({best_efficiency.name}), "
          f"{energy_efficiency(best_efficiency):.1f} G elements/J — suited to screening")
    from repro.perfmodel.efficiency import device_throughput

    fastest = max(list_devices("all"), key=lambda d: device_throughput(d))
    print(f"  fastest device: {fastest.key} ({fastest.name}), "
          f"{device_throughput(fastest) / 1e9:.0f} G elements/s — suited to exploratory runs")


if __name__ == "__main__":
    main()
