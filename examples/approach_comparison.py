#!/usr/bin/env python3
"""Measure the four CPU approaches and the GPU simulator on real (small) runs.

The paper's optimisation story — remove the phenotype, block for the cache,
vectorise; transpose and tile on the GPU — is usually told with performance
models.  This example *executes* every approach on the same dataset and
reports measured wall-clock throughput, the dynamic instruction counts each
kernel charged to its counter, and the GPU simulator's coalescing statistics,
so the story can be checked end-to-end on any machine.

Run with::

    python examples/approach_comparison.py [n_snps] [n_samples]
"""

from __future__ import annotations

import sys
import time


from repro import SyntheticConfig, generate_dataset
from repro.core import EpistasisDetector
from repro.core.approaches import list_approaches
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.devices import gpu
from repro.experiments.report import format_table
from repro.gpusim import NDRange, SimulatedGpu, epistasis_kernel_split, make_split_kernel_args


def measured_approaches(dataset) -> None:
    rows = []
    for name in list_approaches():
        detector = EpistasisDetector(approach=name, n_workers=1, chunk_size=1024)
        started = time.perf_counter()
        result = detector.detect(dataset)
        elapsed = time.perf_counter() - started
        counts = result.stats.op_counts
        rows.append(
            {
                "approach": name,
                "best": str(result.best_snps),
                "elapsed_s": round(elapsed, 3),
                "meas_Melems_per_s": round(result.stats.elements_per_second / 1e6, 1),
                "POPCNT": counts.get("POPCNT", 0) + counts.get("VPOPCNT", 0),
                "AND": counts.get("AND", 0) + counts.get("VAND", 0),
                "bytes_loaded_MiB": round(result.stats.bytes_loaded / 2**20, 1),
            }
        )
    print(format_table(rows, title="Measured approaches (functional kernels)"))
    best = {r["best"] for r in rows}
    print(f"all approaches agree on the best triplet: {len(best) == 1}\n")


def simulated_gpu_layouts(dataset) -> None:
    split = PhenotypeSplitDataset.from_dataset(dataset.subset_snps(range(16)))
    sim = SimulatedGpu(gpu("GN4"))
    rows = []
    for layout in ("snp-major", "transposed", "tiled"):
        args = make_split_kernel_args(split, layout=layout, block_size=8)
        kernel = epistasis_kernel_split(args)
        results, stats = sim.launch(kernel, NDRange((16, 16, 16), subgroup_size=32))
        best = min(results, key=lambda r: r[2])
        rows.append(
            {
                "layout": layout,
                "threads": stats.n_threads,
                "active": stats.n_active_threads,
                "tx_per_warp_load": round(stats.transactions_per_warp_load, 2),
                "est_cycles": round(stats.estimated_cycles or 0.0, 1),
                "bound": stats.bound,
                "best": str(best[0]),
            }
        )
    print(format_table(rows, title="GPU simulator: layout comparison (Algorithm 2)"))


def main() -> None:
    n_snps = int(sys.argv[1]) if len(sys.argv) > 1 else 28
    n_samples = int(sys.argv[2]) if len(sys.argv) > 2 else 1024
    dataset = generate_dataset(SyntheticConfig(n_snps=n_snps, n_samples=n_samples, seed=13))
    print(f"dataset: {dataset}, {dataset.n_combinations(3):,} triplets\n")
    measured_approaches(dataset)
    simulated_gpu_layouts(dataset)


if __name__ == "__main__":
    main()
