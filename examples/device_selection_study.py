#!/usr/bin/env python3
"""Device-selection study: which CPU/GPU should run an epistasis campaign?

This example reproduces, at library-API level, the paper's architectural
study: it characterises the four approaches in the Cache-Aware Roofline
Model, sweeps the 13 catalogued devices with the analytical performance
models, and answers three practical questions a lab planning a GWAS
interaction analysis would ask:

1. Which approach should run on my device? (CARM placement, Figure 2)
2. Which device finishes a given dataset fastest? (Figures 3/4, Table III)
3. Which device is the most energy-efficient, and is a heterogeneous
   CPU+GPU setup worth it? (§V-D)

Run with::

    python examples/device_selection_study.py [n_snps] [n_samples]
"""

from __future__ import annotations

import sys

from repro.carm import characterize_cpu_approaches, characterize_gpu_approaches, render_ascii
from repro.core.combinations import combination_count
from repro.devices import cpu, gpu, list_devices
from repro.devices.specs import CpuSpec
from repro.experiments.comparison import run_device_comparison, run_heterogeneous
from repro.experiments.report import format_table
from repro.perfmodel import estimate_cpu, estimate_gpu


def question_1_carm(n_snps: int, n_samples: int) -> None:
    print("Q1. Which approach should run on my device?  (CARM, Figure 2)")
    ci3 = cpu("CI3")
    model, points = characterize_cpu_approaches(ci3, n_snps, n_samples)
    print(render_ascii(model, points))
    gi2 = gpu("GI2")
    model_g, points_g = characterize_gpu_approaches(gi2, n_snps, n_samples)
    print(render_ascii(model_g, points_g))
    print("  -> V4 (blocked + vectorised / tiled + coalesced) is the right choice everywhere.\n")


def question_2_fastest(n_snps: int, n_samples: int) -> None:
    print("Q2. Which device finishes the dataset fastest?")
    n_combinations = combination_count(n_snps, 3)
    rows = []
    for spec in list_devices("all"):
        if isinstance(spec, CpuSpec):
            est = estimate_cpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
        else:
            est = estimate_gpu(spec, 4, n_snps=n_snps, n_samples=n_samples)
        rows.append(
            {
                "device": spec.key,
                "name": spec.name,
                "total_G_per_s": round(est.elements_per_second_total / 1e9, 1),
                "est_hours": round(est.time_seconds(n_combinations) / 3600.0, 2),
            }
        )
    rows.sort(key=lambda r: r["est_hours"])
    print(format_table(rows))
    print(f"  (search space: {n_combinations:.3e} triplets x {n_samples} samples)\n")


def question_3_efficiency(n_snps: int, n_samples: int) -> None:
    print("Q3. Energy efficiency and heterogeneous execution (§V-D)")
    print(format_table(run_device_comparison(n_snps, n_samples)))
    print()
    print(format_table(run_heterogeneous(n_snps=n_snps, n_samples=n_samples)))
    print()


def main() -> None:
    n_snps = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    n_samples = int(sys.argv[2]) if len(sys.argv) > 2 else 16384
    print(f"Device-selection study for {n_snps} SNPs x {n_samples} samples\n")
    question_1_carm(min(n_snps, 2048), n_samples)
    question_2_fastest(n_snps, n_samples)
    question_3_efficiency(n_snps, n_samples)


if __name__ == "__main__":
    main()
