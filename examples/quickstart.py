#!/usr/bin/env python3
"""Quickstart: detect a planted three-way gene interaction.

This example walks the full pipeline of the paper on a laptop-sized problem:

1. generate a synthetic case/control dataset with a planted third-order
   epistatic interaction (a threshold penetrance model over three SNPs);
2. run the exhaustive search with the best CPU approach (phenotype-split,
   cache-blocked, vectorised kernel) and the Bayesian K2 score;
3. print the recovered interaction, the top-5 ranking and the execution
   statistics (throughput in the paper's combinations x samples unit).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EpistasisDetector,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
)


def main() -> None:
    planted = (7, 19, 42)
    config = SyntheticConfig(
        n_snps=64,
        n_samples=2048,
        interaction=PlantedInteraction(
            snps=planted, model="threshold", baseline=0.03, effect=0.85
        ),
        seed=2022,
    )
    dataset = generate_dataset(config)
    print(f"dataset: {dataset}")
    print(f"search space: {dataset.n_combinations(3):,} SNP triplets")

    detector = EpistasisDetector(
        approach="cpu-v4", objective="k2", n_workers=2, chunk_size=4096, top_k=5
    )
    result = detector.detect(dataset)

    print()
    print(result.summary())
    print()
    recovered = tuple(sorted(result.best_snps))
    if recovered == planted:
        print(f"SUCCESS: recovered the planted interaction {planted}")
    else:
        print(
            f"planted {planted}, best found {recovered} "
            f"(in top-5: {result.contains(planted)})"
        )


if __name__ == "__main__":
    main()
