"""Tests of the experiment harness (tables, figures, ablations, reporting)."""

from __future__ import annotations


from repro.experiments import ablations, comparison, figure2, figure3, figure4, table3, tables
from repro.experiments.report import format_float, format_table


class TestReport:
    def test_format_float(self):
        assert format_float(3) == "3"
        assert format_float(3.14159) == "3.142"
        assert format_float(1.23e8) == "1.230e+08"
        assert format_float(True) == "True"
        assert format_float("text") == "text"
        assert format_float(0.0) == "0"

    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in format_table(rows, columns=["a"])


class TestTables:
    def test_table1(self):
        rows = tables.run_table1()
        assert len(rows) == 5
        assert "Table I" in tables.format_table1()

    def test_table2(self):
        rows = tables.run_table2()
        assert len(rows) == 9
        assert "Table II" in tables.format_table2()


class TestFigure2:
    def test_rows(self):
        rows = figure2.run_figure2("CI3")
        assert len(rows) == 4
        assert all(r["device"] == "CI3" for r in rows)

    def test_gpu_device(self):
        rows = figure2.run_figure2("GI2")
        assert {r["approach"] for r in rows} == {"V1", "V2", "V3", "V4"}

    def test_format_contains_both_panels(self):
        text = figure2.format_figure2(ascii_chart=False)
        assert "Figure 2a" in text and "Figure 2b" in text

    def test_format_with_chart(self):
        text = figure2.format_figure2()
        assert "CARM CI3" in text and "CARM GI2" in text


class TestFigure3:
    def test_row_structure(self):
        rows = figure3.run_figure3()
        # 5 CPUs, AVX-512 machines run twice, 3 dataset sizes.
        assert len(rows) == (5 + 2) * 3
        keys = {(r["device"], r["isa"]) for r in rows}
        assert ("CI3", "avx2-256 (AVX run)") in keys

    def test_restricted_run(self):
        from repro.devices import cpu

        rows = figure3.run_figure3(snp_sizes=(2048,), cpus=[cpu("CI1")])
        assert len(rows) == 1

    def test_format(self):
        assert "Figure 3" in figure3.format_figure3(snp_sizes=(2048,))


class TestFigure4:
    def test_row_structure(self):
        rows = figure4.run_figure4()
        assert len(rows) == 9 * 3
        assert {r["device"] for r in rows} == {
            "GI1", "GI2", "GN1", "GN2", "GN3", "GN4", "GA1", "GA2", "GA3"
        }

    def test_format(self):
        assert "Figure 4" in figure4.format_figure4(snp_sizes=(2048,))


class TestTable3:
    def test_rows_cover_paper_table(self):
        rows = table3.run_table3()
        assert len(rows) == 15
        assert {r["baseline"] for r in rows} == {"mpi3snp", "nobre2020", "campos2020"}

    def test_speedups_positive_where_defined(self):
        for row in table3.run_table3():
            if row["repro_speedup"] is not None:
                assert row["repro_speedup"] > 0

    def test_summary(self):
        agg = table3.summary_speedups()
        assert agg["max_speedup"] >= agg["overall_mean_speedup"] > 1.0
        text = table3.format_table3()
        assert "Table III" in text and "Aggregate" in text


class TestComparison:
    def test_device_rows_sorted(self):
        rows = comparison.run_device_comparison()
        totals = [r["total_gelements_per_s"] for r in rows]
        assert totals == sorted(totals, reverse=True)
        assert len(rows) == 14

    def test_heterogeneous_rows(self):
        rows = comparison.run_heterogeneous()
        assert len(rows) == len(comparison.DEFAULT_HETERO_PAIRS)
        for row in rows:
            assert row["combined_gelements_per_s"] >= row["gpu_gelements_per_s"]

    def test_format(self):
        text = comparison.format_comparison()
        assert "Heterogeneous" in text


class TestAblations:
    def test_phenotype_elision(self):
        rows = ablations.run_phenotype_elision(n_snps=16, n_samples=256, n_combos=50)
        assert rows[1]["ops_measured"] < rows[0]["ops_measured"]

    def test_blocking_sweep(self):
        rows = ablations.run_blocking_sweep()
        assert all(r["fits_l1"] for r in rows)

    def test_isa_sweep(self):
        rows = ablations.run_isa_sweep()
        assert {r["isa"] for r in rows} == {"avx-128", "avx2-256", "avx512-skx", "avx512-vpopcnt"}

    def test_coalescing(self):
        rows = ablations.run_coalescing(n_snps=40, n_samples=64)
        by = {r["layout"]: r for r in rows}
        assert by["transposed"]["transactions_per_warp_load"] < by["snp-major"]["transactions_per_warp_load"]

    def test_tiling_sweep(self):
        rows = ablations.run_tiling_sweep()
        assert [r["approach"] for r in rows] == ["gpu-v1", "gpu-v2", "gpu-v3", "gpu-v4"]

    def test_format_all(self):
        text = ablations.format_ablations()
        assert "Ablation" in text
