"""Tests of the four CPU approaches.

The central property — shared with the GPU approaches and property-tested in
``test_properties.py`` — is bit-exact agreement of every approach with the
contingency oracle.  The tests here additionally cover the approach-specific
behaviour: encodings, blocking, ISA accounting and error handling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approaches import (
    APPROACHES,
    CpuBlockedApproach,
    CpuNaiveApproach,
    CpuNoPhenotypeApproach,
    CpuVectorizedApproach,
    get_approach,
    list_approaches,
)
from repro.core.approaches._kernels import NAIVE_OPS_PER_COMBO_WORD
from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle_many
from repro.devices import cpu

CPU_NAMES = ["cpu-v1", "cpu-v2", "cpu-v3", "cpu-v4"]


@pytest.fixture(scope="module")
def combos24():
    return generate_combinations(24, 3)[::7]  # 290 triplets, spread over the space


class TestRegistry:
    def test_names_and_versions(self):
        assert list_approaches("cpu") == CPU_NAMES
        for i, name in enumerate(CPU_NAMES, start=1):
            assert APPROACHES[name].version == i
            assert APPROACHES[name].device == "cpu"

    def test_aliases(self):
        assert get_approach("cpu").name == "cpu-v4"
        assert get_approach("naive").name == "cpu-v1"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_approach("cpu-v5")


@pytest.mark.parametrize("name", CPU_NAMES)
class TestAgainstOracle:
    def test_matches_oracle(self, name, small_dataset, combos24):
        approach = get_approach(name)
        encoded = approach.prepare(small_dataset)
        tables = approach.build_tables(encoded, combos24)
        oracle = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos24
        )
        assert np.array_equal(tables, oracle)

    def test_unbalanced_odd_samples(self, name, odd_sample_dataset):
        approach = get_approach(name)
        encoded = approach.prepare(odd_sample_dataset)
        combos = generate_combinations(odd_sample_dataset.n_snps, 3)[:100]
        tables = approach.build_tables(encoded, combos)
        oracle = contingency_oracle_many(
            odd_sample_dataset.genotypes, odd_sample_dataset.phenotypes, combos
        )
        assert np.array_equal(tables, oracle)

    def test_rejects_bad_combos(self, name, small_dataset):
        approach = get_approach(name)
        encoded = approach.prepare(small_dataset)
        with pytest.raises(ValueError):
            approach.build_tables(encoded, np.array([[2, 1, 0]]))
        with pytest.raises(ValueError):
            approach.build_tables(encoded, np.array([[0]]))  # below min order
        with pytest.raises(ValueError):
            approach.build_tables(encoded, np.array([[0, 1, 2, 3, 4, 5]]))
        with pytest.raises(IndexError):
            approach.build_tables(encoded, np.array([[0, 1, 99]]))

    def test_empty_batch(self, name, small_dataset):
        approach = get_approach(name)
        encoded = approach.prepare(small_dataset)
        tables = approach.build_tables(encoded, np.empty((0, 3), dtype=np.int64))
        assert tables.shape == (0, 27, 2)


class TestNaiveApproach:
    def test_instruction_accounting(self, small_dataset):
        approach = CpuNaiveApproach()
        encoded = approach.prepare(small_dataset)
        combos = generate_combinations(24, 3)[:10]
        approach.build_tables(encoded, combos)
        counts = approach.op_counts()
        # Charging is per paper (32-bit) word whatever machine layout runs.
        n_words = encoded.n_words * encoded.layout.paper_words
        assert counts["AND"] == int(NAIVE_OPS_PER_COMBO_WORD["AND"]) * 10 * n_words
        assert counts["POPCNT"] == int(NAIVE_OPS_PER_COMBO_WORD["POPCNT"]) * 10 * n_words
        assert approach.counter.bytes_loaded == 10 * n_words * 10 * 4

    def test_extra_stats(self):
        assert CpuNaiveApproach().extra_stats()["ops_per_combo_word"] == 162


class TestNoPhenotypeApproach:
    def test_instruction_accounting(self, small_dataset):
        approach = CpuNoPhenotypeApproach()
        encoded = approach.prepare(small_dataset)
        combos = generate_combinations(24, 3)[:10]
        approach.build_tables(encoded, combos)
        counts = approach.op_counts()
        # Charging is per paper (32-bit) word whatever machine layout runs.
        n_words = sum(encoded.words_per_class) * encoded.layout.paper_words
        assert counts["POPCNT"] == 27 * 10 * n_words
        assert counts["NOR"] == 3 * 10 * n_words

    def test_uses_fewer_ops_and_bytes_than_naive(self, small_dataset):
        combos = generate_combinations(24, 3)[:50]
        naive, split = CpuNaiveApproach(), CpuNoPhenotypeApproach()
        naive.build_tables(naive.prepare(small_dataset), combos)
        split.build_tables(split.prepare(small_dataset), combos)
        assert split.counter.total_ops < naive.counter.total_ops
        assert split.counter.bytes_loaded < naive.counter.bytes_loaded
        # §IV-A: roughly one third fewer memory transfers.
        ratio = split.counter.bytes_loaded / naive.counter.bytes_loaded
        assert 0.55 <= ratio <= 0.75


class TestBlockedApproach:
    def test_default_blocking_from_ci3(self):
        approach = CpuBlockedApproach()
        assert (approach.block_snps, approach.block_samples) == (5, 400)

    def test_blocking_from_other_cpu(self):
        approach = CpuBlockedApproach(cpu_spec=cpu("CA2"))
        assert (approach.block_snps, approach.block_samples) == (5, 96)

    def test_explicit_blocking(self):
        approach = CpuBlockedApproach(block_snps=4, block_samples=64)
        assert approach.block_snps == 4

    def test_invalid_blocking(self):
        with pytest.raises(ValueError):
            CpuBlockedApproach(block_snps=0)

    def test_result_independent_of_block_samples(self, small_dataset, combos24):
        reference = None
        for bp in (32, 96, 400, 10_000):
            approach = CpuBlockedApproach(block_samples=bp)
            tables = approach.build_tables(approach.prepare(small_dataset), combos24)
            if reference is None:
                reference = tables
            else:
                assert np.array_equal(tables, reference)

    def test_sample_passes_recorded(self, small_dataset):
        approach = CpuBlockedApproach(block_samples=32)
        approach.build_tables(approach.prepare(small_dataset), generate_combinations(24, 3)[:5])
        assert approach.extra_stats()["sample_chunk_passes"] > 2


class TestVectorizedApproach:
    def test_default_isa_follows_cpu(self):
        assert CpuVectorizedApproach().isa.name == "avx512-vpopcnt"
        assert CpuVectorizedApproach(cpu_spec=cpu("CA2")).isa.name == "avx2-256"

    def test_isa_by_name(self):
        approach = CpuVectorizedApproach(isa="avx512-skx")
        assert approach.isa.extracts_per_lane == 2

    @pytest.mark.parametrize("isa_name", ["avx-128", "avx2-256", "avx512-skx", "avx512-vpopcnt"])
    def test_results_independent_of_isa(self, small_dataset, combos24, isa_name):
        approach = CpuVectorizedApproach(isa=isa_name)
        tables = approach.build_tables(approach.prepare(small_dataset), combos24[:40])
        oracle = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos24[:40]
        )
        assert np.array_equal(tables, oracle)

    def test_vector_accounting_vpopcnt_vs_scalar(self, small_dataset):
        combos = generate_combinations(24, 3)[:20]
        with_vp = CpuVectorizedApproach(isa="avx512-vpopcnt")
        with_vp.build_tables(with_vp.prepare(small_dataset), combos)
        without_vp = CpuVectorizedApproach(isa="avx512-skx")
        without_vp.build_tables(without_vp.prepare(small_dataset), combos)
        assert with_vp.counter.ops.get("VPOPCNT", 0) > 0
        assert with_vp.counter.ops.get("EXTRACT", 0) == 0
        assert without_vp.counter.ops.get("VPOPCNT", 0) == 0
        assert without_vp.counter.ops.get("EXTRACT", 0) > 0
        # Two extracts per 64-bit lane on Skylake-SP AVX-512: per combination
        # and per 512-bit register, 27 cells x 8 lanes x 2 extracts.
        encoded = without_vp.prepare(small_dataset)
        lanes = without_vp.isa.lanes32
        registers = sum(
            (encoded.split.planes_for_class(c)[0].shape[2] + lanes - 1) // lanes
            for c in (0, 1)
        )
        assert without_vp.counter.ops["EXTRACT"] == 2 * 8 * 27 * registers * len(combos)

    def test_reference_register_file_path(self, small_dataset):
        approach = CpuVectorizedApproach(isa="avx2-256")
        encoded = approach.prepare(small_dataset)
        combo = (2, 9, 17)
        reference = approach.reference_single_combination(encoded, combo)
        fast = approach.build_tables(encoded, np.array([combo]))[0]
        assert np.array_equal(reference, fast)

    def test_vector_instruction_mix_snapshot(self, small_dataset):
        approach = CpuVectorizedApproach(isa="avx512-vpopcnt")
        approach.build_tables(approach.prepare(small_dataset), generate_combinations(24, 3)[:5])
        mix = approach.vector_instruction_mix()
        assert mix["VAND"] > 0 and mix["VLOAD"] > 0

    def test_extra_stats(self):
        stats = CpuVectorizedApproach(isa="avx512-vpopcnt").extra_stats()
        assert stats["vector_popcnt"] is True
        assert stats["vector_width_bits"] == 512
