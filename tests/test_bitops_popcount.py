"""Unit and property tests of the population-count primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops.popcount import (
    HAS_BITWISE_COUNT,
    popcount32,
    popcount64,
    popcount_lut,
    popcount_reduce,
    scalar_popcount,
)


class TestScalarPopcount:
    def test_known_values(self):
        assert scalar_popcount(0) == 0
        assert scalar_popcount(1) == 1
        assert scalar_popcount(0xFFFFFFFF) == 32
        assert scalar_popcount(0b1011_0110) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            scalar_popcount(-1)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_bin_count(self, value):
        assert scalar_popcount(value) == bin(value).count("1")


class TestPopcount32:
    def test_empty(self):
        out = popcount32(np.array([], dtype=np.uint32))
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_known_values(self):
        words = np.array([0, 1, 0xFFFFFFFF, 0x80000001, 0x0F0F0F0F], dtype=np.uint32)
        assert popcount32(words).tolist() == [0, 1, 32, 2, 16]

    def test_preserves_shape(self):
        words = np.arange(24, dtype=np.uint32).reshape(2, 3, 4)
        assert popcount32(words).shape == (2, 3, 4)

    def test_signed_input_reinterpreted(self):
        words = np.array([-1], dtype=np.int32)  # 0xFFFFFFFF
        assert popcount32(words)[0] == 32

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            popcount32(np.array([1.5]))

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=64)
    )
    @settings(max_examples=100)
    def test_matches_scalar_oracle(self, values):
        words = np.array(values, dtype=np.uint32)
        expected = [scalar_popcount(v) for v in values]
        assert popcount32(words).tolist() == expected

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=64)
    )
    @settings(max_examples=50)
    def test_lut_matches_hw(self, values):
        words = np.array(values, dtype=np.uint32)
        assert np.array_equal(popcount_lut(words), popcount32(words))


class TestPopcount64:
    def test_known_values(self):
        words = np.array([0, 0xFFFFFFFFFFFFFFFF, 1 << 63], dtype=np.uint64)
        assert popcount64(words).tolist() == [0, 64, 1]

    @given(
        st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=32)
    )
    @settings(max_examples=50)
    def test_matches_scalar_oracle(self, values):
        words = np.array(values, dtype=np.uint64)
        expected = [scalar_popcount(v) for v in values]
        assert popcount64(words).tolist() == expected

    def test_consistent_with_popcount32_pairs(self, rng):
        words32 = rng.integers(0, 2**32, size=16, dtype=np.uint32)
        words64 = np.ascontiguousarray(words32).view(np.uint64)
        assert popcount64(words64).sum() == popcount32(words32).sum()


class TestPopcountReduce:
    def test_reduces_last_axis(self, rng):
        words = rng.integers(0, 2**32, size=(5, 7), dtype=np.uint32)
        out = popcount_reduce(words)
        assert out.shape == (5,)
        assert np.array_equal(out, popcount32(words).sum(axis=-1))

    def test_reduce_none_keeps_shape(self, rng):
        words = rng.integers(0, 2**32, size=(3, 4), dtype=np.uint32)
        assert popcount_reduce(words, axis=None) == popcount32(words).sum()


def test_hardware_popcount_available():
    """NumPy >= 2.0 is installed offline, so the fast path must be active."""
    assert HAS_BITWISE_COUNT
