"""Tests of the unified heterogeneous execution engine."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EpistasisDetector
from repro.engine import (
    CancellationToken,
    CarmRatioPolicy,
    DynamicPolicy,
    EngineDevice,
    ExecutionPlan,
    GuidedPolicy,
    GuidedScheduler,
    HeterogeneousExecutor,
    StaticPolicy,
    TopKHeap,
    get_policy,
    list_policies,
    parse_devices,
)
from repro.engine.mapreduce import parallel_map_reduce
from repro.engine.scheduling import DynamicScheduler
from tests.conftest import PLANTED_TRIPLET


def _drain_concurrently(sources, n_threads: int):
    """Pull ranges from shared sources with ``n_threads`` threads."""
    seen: list[tuple[int, int]] = []
    lock = threading.Lock()

    def worker(source):
        while True:
            r = source.next_range()
            if r is None:
                return
            with lock:
                seen.append(r)

    threads = [
        threading.Thread(target=worker, args=(sources[i % len(sources)],))
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return seen


def _assert_exact_cover(ranges, total):
    items = sorted(i for start, stop in ranges for i in range(start, stop))
    assert items == list(range(total)), "ranges must cover [0, total) exactly once"


class TestPolicyCoverage:
    """Each policy must hand out every rank exactly once — no gaps, no overlaps."""

    def test_dynamic_eight_threads_exactly_once(self):
        policy = DynamicPolicy()
        devices = [EngineDevice(kind="cpu", n_workers=8, chunk_size=13)]
        [assignment] = policy.assign(10_000, devices)
        assert len(assignment.sources) == 8
        seen = _drain_concurrently(assignment.sources, 8)
        _assert_exact_cover(seen, 10_000)

    def test_guided_eight_threads_exactly_once(self):
        policy = GuidedPolicy(min_chunk=7)
        devices = [EngineDevice(kind="cpu", n_workers=8, chunk_size=64)]
        [assignment] = policy.assign(10_000, devices)
        seen = _drain_concurrently(assignment.sources, 8)
        _assert_exact_cover(seen, 10_000)

    def test_static_covers_without_gaps(self):
        policy = StaticPolicy()
        devices = [
            EngineDevice(kind="cpu", n_workers=3, chunk_size=17),
            EngineDevice(kind="gpu", n_workers=2, chunk_size=29),
        ]
        assignments = policy.assign(1003, devices)
        ranges = []
        for assignment in assignments:
            for source in assignment.sources:
                while True:
                    r = source.next_range()
                    if r is None:
                        break
                    ranges.append(r)
        _assert_exact_cover(ranges, 1003)
        assert sum(a.planned_items for a in assignments) == 1003

    def test_carm_covers_without_gaps(self):
        policy = CarmRatioPolicy()
        devices = [
            EngineDevice(kind="cpu", n_workers=2, chunk_size=11),
            EngineDevice(kind="gpu", n_workers=1, chunk_size=23),
        ]
        assignments = policy.assign(577, devices)
        ranges = []
        for assignment in assignments:
            # Sources are shared per lane; drain the lane's first source.
            source = assignment.sources[0]
            while True:
                r = source.next_range()
                if r is None:
                    break
                ranges.append(r)
        _assert_exact_cover(ranges, 577)
        assert sum(a.planned_items for a in assignments) == 577

    @given(
        total=st.integers(min_value=0, max_value=5000),
        min_chunk=st.integers(min_value=1, max_value=300),
        workers=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40)
    def test_guided_partitions_range(self, total, min_chunk, workers):
        chunks = list(GuidedScheduler(total, n_workers=workers, min_chunk=min_chunk))
        assert sum(stop - start for start, stop in chunks) == total
        for (s1, e1), (s2, e2) in zip(chunks, chunks[1:]):
            assert e1 == s2
        # Guided chunks never grow (monotone non-increasing decay).
        sizes = [stop - start for start, stop in chunks]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestCarmRatioPolicy:
    def test_explicit_ratios(self):
        policy = CarmRatioPolicy(ratios=[3, 1])
        devices = [EngineDevice(kind="cpu"), EngineDevice(kind="gpu")]
        assert policy.shares(400, devices) == [300, 100]

    def test_shares_follow_model_throughput(self):
        # The modelled Titan Xp (GN4) is far faster than the Ice Lake SP
        # CPU (CI3), so the GPU lane must receive the larger share.
        policy = CarmRatioPolicy(n_snps=4096, n_samples=4096)
        devices = [EngineDevice(kind="cpu"), EngineDevice(kind="gpu")]
        cpu_share, gpu_share = policy.shares(100_000, devices)
        assert cpu_share + gpu_share == 100_000
        assert gpu_share > cpu_share

    def test_ratio_validation(self):
        policy = CarmRatioPolicy(ratios=[1])
        with pytest.raises(ValueError):
            policy.shares(10, [EngineDevice(kind="cpu"), EngineDevice(kind="gpu")])
        with pytest.raises(ValueError):
            CarmRatioPolicy(ratios=[0, 0]).shares(10, [EngineDevice(), EngineDevice(kind="gpu")])

    def test_configure_late_binds_shape(self):
        # Late-bound shapes follow each dataset (a reused instance rebinds);
        # constructor-explicit shapes stay pinned.
        policy = CarmRatioPolicy()
        policy.configure(n_snps=1024, n_samples=512)
        assert (policy.n_snps, policy.n_samples) == (1024, 512)
        policy.configure(n_snps=9, n_samples=9)
        assert (policy.n_snps, policy.n_samples) == (9, 9)

        pinned = CarmRatioPolicy(n_snps=2048, n_samples=4096)
        pinned.configure(n_snps=9, n_samples=9)
        assert (pinned.n_snps, pinned.n_samples) == (2048, 4096)

    def test_configure_late_binds_order(self):
        policy = CarmRatioPolicy()
        assert policy.order == 3  # the paper's default
        policy.configure(n_snps=1024, n_samples=512, order=4)
        assert policy.order == 4
        pinned = CarmRatioPolicy(order=2)
        pinned.configure(n_snps=9, n_samples=9, order=5)
        assert pinned.order == 2

    def test_shares_depend_on_order(self):
        """The split is recomputed from order-aware model throughputs."""
        devices = [EngineDevice(kind="cpu"), EngineDevice(kind="gpu")]
        shares = {}
        for order in (2, 4):
            policy = CarmRatioPolicy(n_snps=4096, n_samples=4096, order=order)
            shares[order] = policy.shares(100_000, devices)
        for order, (cpu_share, gpu_share) in shares.items():
            assert cpu_share + gpu_share == 100_000
            assert gpu_share > cpu_share


class TestPolicyRegistry:
    def test_names(self):
        assert list_policies() == ["carm", "dynamic", "guided", "static"]

    def test_aliases_and_instances(self):
        assert get_policy("carm-ratio").name == "carm"
        policy = StaticPolicy()
        assert get_policy(policy) is policy

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_policy("round-robin")


class TestPlan:
    def test_parse_devices(self):
        lanes = parse_devices("cpu+gpu", n_workers=4, chunk_size=512)
        assert [d.kind for d in lanes] == ["cpu", "gpu"]
        assert [d.n_workers for d in lanes] == [4, 1]
        assert all(d.chunk_size == 512 for d in lanes)

    def test_parse_devices_invalid(self):
        with pytest.raises(ValueError):
            parse_devices("cpu+tpu")
        with pytest.raises(ValueError):
            parse_devices("cpu+cpu")
        with pytest.raises(ValueError):
            parse_devices("")

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ExecutionPlan(total=-1)
        with pytest.raises(ValueError):
            ExecutionPlan(total=1, devices=[])
        with pytest.raises(ValueError):
            ExecutionPlan(total=1, top_k=0)
        with pytest.raises(ValueError):
            EngineDevice(kind="fpga")

    def test_default_policy_and_labels(self):
        plan = ExecutionPlan(total=10, devices=parse_devices("cpu+gpu"))
        assert plan.policy.name == "dynamic"
        assert plan.device_labels() == ["cpu", "gpu"]
        assert plan.total_workers == 2


class TestTopKHeap:
    def test_matches_global_sort(self, rng):
        heap = TopKHeap(5)
        scores = rng.normal(size=200)
        combos = np.stack([np.arange(200), np.arange(200) + 500], axis=1)
        for start in range(0, 200, 17):
            heap.push_batch(combos[start : start + 17], scores[start : start + 17])
        expected = np.argsort(scores, kind="stable")[:5]
        assert [i.snps[0] for i in heap.items] == [int(i) for i in expected]
        assert len(heap) == 5

    def test_bounded(self):
        heap = TopKHeap(3)
        heap.push_batch(np.arange(10)[:, None], np.arange(10, dtype=float))
        assert len(heap.items) == 3

    def test_items_ordered_by_score_then_snps(self):
        # Tied scores select (and order) by the combination tuple — the
        # global combination rank — not by position within the chunk, so
        # chunk/shard boundaries can never change which ties survive.
        heap = TopKHeap(2)
        heap.push_batch(np.array([[5], [1], [3]]), np.zeros(3))
        assert [i.snps for i in heap.items] == [(1,), (3,)]

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKHeap(0)
        with pytest.raises(ValueError):
            TopKHeap(1).push_batch(np.zeros((2, 1)), np.zeros(3))


def _identity_kernel(worker, start, stop):
    combos = np.arange(start, stop, dtype=np.int64)[:, None]
    return combos, combos[:, 0].astype(float)


class TestHeterogeneousExecutor:
    def _plan(self, total=1000, policy=None, **kwargs):
        return ExecutionPlan(
            total=total,
            devices=[EngineDevice(kind="cpu", n_workers=4, chunk_size=37)],
            policy=policy or DynamicPolicy(),
            **kwargs,
        )

    def test_covers_everything(self):
        result = HeterogeneousExecutor(self._plan(top_k=3)).run(
            lambda device, worker_id: None, _identity_kernel
        )
        assert result.n_items == 1000
        assert [i.snps for i in result.top] == [(0,), (1,), (2,)]
        assert not result.cancelled
        assert result.best.score == 0.0

    def test_device_stats(self):
        result = HeterogeneousExecutor(self._plan()).run(
            lambda device, worker_id: None, _identity_kernel
        )
        stats = result.device_stats["cpu"]
        assert stats["workers"] == 4
        assert stats["items"] == 1000
        assert stats["chunks"] == (1000 + 36) // 37
        assert 0.0 <= stats["utilization"] <= 1.0
        assert stats["share"] == pytest.approx(1.0)

    def test_pre_cancelled_runs_nothing(self):
        cancel = CancellationToken()
        cancel.cancel()
        result = HeterogeneousExecutor(self._plan(), cancel=cancel).run(
            lambda device, worker_id: None, _identity_kernel
        )
        assert result.cancelled
        assert result.n_items == 0
        assert result.top == []

    def test_mid_run_cancellation(self):
        cancel = CancellationToken()

        def kernel(worker, start, stop):
            if start >= 500:
                cancel.cancel()
            return _identity_kernel(worker, start, stop)

        plan = ExecutionPlan(
            total=100_000,
            devices=[EngineDevice(kind="cpu", n_workers=1, chunk_size=100)],
            policy=DynamicPolicy(),
        )
        result = HeterogeneousExecutor(plan, cancel=cancel).run(
            lambda device, worker_id: None, kernel
        )
        assert result.cancelled
        assert 0 < result.n_items < 100_000

    def test_worker_exception_carries_worker_id(self):
        def kernel(worker, start, stop):
            raise RuntimeError("kernel exploded")

        with pytest.raises(RuntimeError, match="kernel exploded") as excinfo:
            HeterogeneousExecutor(self._plan()).run(
                lambda device, worker_id: None, kernel
            )
        assert hasattr(excinfo.value, "worker_id")
        assert excinfo.value.device_label == "cpu"

    def test_worker_exception_cancels_siblings(self):
        plan = ExecutionPlan(
            total=1_000_000,
            devices=[EngineDevice(kind="cpu", n_workers=4, chunk_size=10)],
            policy=DynamicPolicy(),
        )
        executor = HeterogeneousExecutor(plan)

        def kernel(worker, start, stop):
            if start >= 100:
                raise RuntimeError("stop the fleet")
            return _identity_kernel(worker, start, stop)

        with pytest.raises(RuntimeError):
            executor.run(lambda device, worker_id: None, kernel)
        assert executor.cancel.cancelled

    def test_progress_monotone_and_complete(self):
        calls: list[tuple[int, int]] = []
        HeterogeneousExecutor(self._plan()).run(
            lambda device, worker_id: None,
            _identity_kernel,
            progress=lambda done, total: calls.append((done, total)),
        )
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert dones[-1] == 1000
        assert all(t == 1000 for _, t in calls)

    def test_worker_factory_receives_ids(self):
        ids: list[int] = []

        def factory(device, worker_id):
            ids.append(worker_id)
            return worker_id

        HeterogeneousExecutor(self._plan()).run(factory, _identity_kernel)
        assert ids == [0, 1, 2, 3]


class TestDetectorOnEngine:
    """Acceptance: every schedule/device plan reproduces the reference top-k."""

    @pytest.mark.parametrize("schedule", ["dynamic", "static", "guided", "carm"])
    def test_schedules_agree(self, small_dataset, schedule):
        reference = EpistasisDetector(approach="cpu-v2").detect(small_dataset)
        result = EpistasisDetector(
            approach="cpu-v2", schedule=schedule, n_workers=3, chunk_size=128
        ).detect(small_dataset)
        assert [i.snps for i in result.top] == [i.snps for i in reference.top]
        assert result.stats.extra["schedule"] == schedule

    def test_heterogeneous_carm_identical_to_single_device(self, planted_dataset):
        single = EpistasisDetector(approach="cpu-v4", top_k=5).detect(planted_dataset)
        het = EpistasisDetector(
            approach="cpu-v4",
            devices="cpu+gpu",
            schedule="carm",
            n_workers=2,
            chunk_size=256,
            top_k=5,
        ).detect(planted_dataset)
        assert tuple(sorted(het.best_snps)) == PLANTED_TRIPLET
        assert [i.snps for i in het.top] == [i.snps for i in single.top]
        assert het.best_score == pytest.approx(single.best_score)

        devices = het.stats.extra["devices"]
        assert set(devices) == {"cpu", "gpu"}
        assert devices["cpu"]["approach"] == "cpu-v4"
        assert devices["gpu"]["approach"] == "gpu-v4"
        for entry in devices.values():
            assert entry["chunks"] >= 1
            assert 0.0 <= entry["utilization"] <= 1.0
        assert (
            devices["cpu"]["items"] + devices["gpu"]["items"]
            == het.stats.n_combinations
        )

    def test_lane_op_counts_not_contaminated_by_global_merge(self, small_dataset):
        # The prototype (gpu-v4) sits on the *second* lane here; its lane's
        # op_counts must not absorb the cpu lane merged into the prototype
        # counter for the global statistics.
        result = EpistasisDetector(
            approach="gpu-v4", devices="cpu+gpu", schedule="static", n_workers=2
        ).detect(small_dataset)
        devices = result.stats.extra["devices"]
        lane_total = sum(
            count
            for entry in devices.values()
            for mnemonic, count in entry["op_counts"].items()
            if mnemonic not in ("LOAD", "STORE")
        )
        assert lane_total == result.stats.total_ops
        assert all(sum(e["op_counts"].values()) > 0 for e in devices.values())

    def test_gpu_single_lane(self, small_dataset):
        reference = EpistasisDetector(approach="cpu-v2").detect(small_dataset)
        result = EpistasisDetector(approach="gpu-v3", devices="gpu").detect(small_dataset)
        assert result.best_snps == reference.best_snps
        assert result.stats.extra["devices"]["gpu"]["kind"] == "gpu"

    def test_heterogeneous_rejects_prebuilt_instances(self, small_dataset):
        from repro.core.approaches import get_approach

        detector = EpistasisDetector(
            approach=get_approach("cpu-v2"), devices="cpu+gpu", schedule="carm"
        )
        with pytest.raises(ValueError):
            detector.detect(small_dataset)

    def test_detect_progress_and_cancel_hooks(self, small_dataset):
        seen: list[int] = []
        EpistasisDetector(approach="cpu-v2", chunk_size=512).detect(
            small_dataset, progress=lambda done, total: seen.append(done)
        )
        assert seen[-1] == small_dataset.n_combinations(3)

        cancel = CancellationToken()
        cancel.cancel()
        with pytest.raises(RuntimeError, match="cancelled"):
            EpistasisDetector(approach="cpu-v2").detect(small_dataset, cancel=cancel)


class TestLegacyExecutorFixes:
    """Satellite fixes of the deprecated parallel.executor shim."""

    def test_payload_populated(self):
        scheduler = DynamicScheduler(100, chunk_size=30)
        total, stats = parallel_map_reduce(
            scheduler, lambda wid, start, stop: stop - start, sum, n_workers=1
        )
        assert total == 100
        assert stats[0].payload == [30, 30, 30, 10]

    def test_payload_populated_threaded(self):
        scheduler = DynamicScheduler(100, chunk_size=9)
        _, stats = parallel_map_reduce(
            scheduler, lambda wid, start, stop: stop - start, sum, n_workers=4
        )
        flat = [n for s in stats for n in s.payload]
        assert sum(flat) == 100
        assert all(len(s.payload) == s.chunks_processed for s in stats)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_exception_carries_worker_id(self, workers):
        def bad_worker(worker_id, start, stop):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom") as excinfo:
            parallel_map_reduce(
                DynamicScheduler(100, chunk_size=10), bad_worker, sum, n_workers=workers
            )
        assert getattr(excinfo.value, "worker_id") in range(workers)
