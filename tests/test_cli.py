"""Tests of the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_npz, load_text


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["generate", "out.npz"],
            ["detect", "in.npz"],
            ["devices"],
            ["figures", "table3"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_default_all(self):
        assert build_parser().parse_args(["figures"]).which == "all"


class TestGenerateCommand:
    def test_generate_npz(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        code = main(["generate", str(out), "--snps", "12", "--samples", "96", "--seed", "5"])
        assert code == 0
        ds = load_npz(out)
        assert ds.n_snps == 12 and ds.n_samples == 96
        assert "wrote" in capsys.readouterr().out

    def test_generate_text_with_interaction(self, tmp_path):
        out = tmp_path / "ds.csv"
        code = main(
            [
                "generate", str(out),
                "--snps", "10", "--samples", "200",
                "--interaction", "1", "4", "7",
                "--model", "xor", "--effect", "0.9",
            ]
        )
        assert code == 0
        ds = load_text(out)
        assert ds.n_snps == 10


class TestDetectCommand:
    def test_detect_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        main(
            [
                "generate", str(out),
                "--snps", "14", "--samples", "512",
                "--interaction", "2", "6", "11", "--effect", "0.9", "--baseline", "0.05",
                "--seed", "7",
            ]
        )
        capsys.readouterr()
        code = main(["detect", str(out), "--approach", "cpu-v4", "--workers", "2", "--top-k", "3"])
        assert code == 0
        text = capsys.readouterr().out
        assert "best interaction" in text
        assert "cpu-v4" in text

    @pytest.mark.parametrize("order,planted", [(2, ("snp0002", "snp0006")), (4, None)])
    def test_detect_order(self, tmp_path, capsys, order, planted):
        out = tmp_path / "ds.npz"
        main(
            [
                "generate", str(out),
                "--snps", "12", "--samples", "512",
                "--interaction", "2", "6", "--effect", "0.9", "--baseline", "0.05",
                "--seed", "7",
            ]
        )
        capsys.readouterr()
        code = main(["detect", str(out), "--order", str(order), "--top-k", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "best interaction" in text
        if planted is not None:
            assert all(name in text for name in planted)

    def test_detect_rejects_unsupported_order(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "in.npz", "--order", "6"])

    def test_generate_accepts_pair_interaction(self, tmp_path):
        out = tmp_path / "pair.npz"
        code = main(
            [
                "generate", str(out),
                "--snps", "10", "--samples", "128",
                "--interaction", "1", "4",
            ]
        )
        assert code == 0
        assert load_npz(out).n_snps == 10


class TestArgumentHardening:
    """Bad names must fail at parse time with the valid vocabulary listed."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["detect", "in.npz", "--approach", "cpu-v9"],
            ["detect", "in.npz", "--objective", "nope"],
            ["detect", "in.npz", "--schedule", "sometimes"],
            ["pipeline", "in.npz", "--approach", "cpu-v9"],
            ["pipeline", "in.npz", "--refine-objective", "nope"],
        ],
    )
    def test_invalid_choice_exits(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err

    def test_approach_error_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "in.npz", "--approach", "zz"])
        err = capsys.readouterr().err
        assert "cpu-v4" in err and "gpu-v4" in err

    def test_aliases_accepted(self):
        args = build_parser().parse_args(
            ["detect", "in.npz", "--approach", "cpu", "--schedule", "carm-ratio"]
        )
        assert args.approach == "cpu" and args.schedule == "carm-ratio"

    def test_pipeline_rejects_order_two_at_parse_time(self, capsys):
        # No screen order below 2 exists, so a staged order-2 search is a
        # dead configuration — argparse must refuse it, not detect_staged.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pipeline", "in.npz", "--order", "2"])
        assert "invalid choice" in capsys.readouterr().err

    def test_output_extension_validated(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "in.npz", "--output", "out.xml"])
        assert ".json or .csv" in capsys.readouterr().err


@pytest.fixture()
def planted_npz(tmp_path):
    """A small planted dataset on disk for detect/pipeline round-trips."""
    out = tmp_path / "planted.npz"
    code = main(
        [
            "generate", str(out),
            "--snps", "20", "--samples", "1024",
            "--interaction", "2", "6", "11", "--effect", "0.9", "--baseline", "0.05",
            "--seed", "7",
        ]
    )
    assert code == 0
    return out


class TestOutputExport:
    def test_detect_json_export(self, tmp_path, planted_npz, capsys):
        dest = tmp_path / "results.json"
        code = main(
            ["detect", str(planted_npz), "--top-k", "3", "--output", str(dest)]
        )
        assert code == 0
        assert f"wrote results to {dest}" in capsys.readouterr().out
        doc = json.loads(dest.read_text())
        assert doc["approach"] == "cpu-v4"
        assert doc["order"] == 3
        assert len(doc["top"]) == 3
        assert doc["top"][0]["rank"] == 1
        assert isinstance(doc["top"][0]["score"], float)
        assert "devices" in doc and doc["devices"]

    def test_detect_csv_export(self, tmp_path, planted_npz):
        dest = tmp_path / "results.csv"
        assert main(["detect", str(planted_npz), "--top-k", "2", "--output", str(dest)]) == 0
        rows = dest.read_text().strip().splitlines()
        assert rows[0] == "rank,snps,snp_names,score,run_id"
        assert len(rows) == 3
        assert rows[1].startswith("1,")
        # Every row carries the same telemetry run identity.
        run_ids = {row.rsplit(",", 1)[1] for row in rows[1:]}
        assert len(run_ids) == 1 and run_ids.pop()

    def test_pipeline_json_export_with_p_values(self, tmp_path, planted_npz):
        dest = tmp_path / "staged.json"
        code = main(
            [
                "pipeline", str(planted_npz),
                "--retain", "8", "--permutations", "9",
                "--top-k", "3", "--output", str(dest),
            ]
        )
        assert code == 0
        doc = json.loads(dest.read_text())
        assert [s["stage"] for s in doc["stages"]] == [
            "screen", "expand", "permutation",
        ]
        assert "p_value" in doc["top"][0]
        assert doc["final_order_evaluated"] < doc["exhaustive_combinations"]

    def test_pipeline_csv_export_has_p_value_column(self, tmp_path, planted_npz):
        dest = tmp_path / "staged.csv"
        code = main(
            [
                "pipeline", str(planted_npz),
                "--retain", "8", "--permutations", "4",
                "--top-k", "2", "--output", str(dest),
            ]
        )
        assert code == 0
        rows = dest.read_text().strip().splitlines()
        assert rows[0] == "rank,snps,snp_names,score,p_value,run_id"


class TestPipelineCommand:
    def test_staged_run_recovers_planted(self, planted_npz, capsys):
        code = main(
            ["pipeline", str(planted_npz), "--retain", "8", "--top-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "staged search" in out
        assert "best interaction" in out
        assert "snp0002, snp0006, snp0011" in out

    def test_refine_and_heterogeneous_devices(self, planted_npz, capsys):
        code = main(
            [
                "pipeline", str(planted_npz),
                "--retain", "8", "--refine-objective", "mutual-information",
                "--devices", "cpu+gpu", "--schedule", "carm", "--workers", "2",
                "--top-k", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "refine" in out
        assert "device cpu" in out and "device gpu" in out

    def test_screen_order_validation_is_friendly(self, planted_npz, capsys):
        code = main(
            ["pipeline", str(planted_npz), "--order", "3", "--screen-order", "3"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_progress_lines_name_stages(self, planted_npz, capsys):
        code = main(
            ["pipeline", str(planted_npz), "--retain", "8", "--progress"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "screen: 100%" in err
        assert "expand: 100%" in err


class TestDistributedFlags:
    def test_detect_checkpoint_and_resume(self, tmp_path, planted_npz, capsys):
        ckpt = tmp_path / "run.ckpt.json"
        code = main(
            [
                "detect", str(planted_npz),
                "--workers", "1", "--checkpoint", str(ckpt), "--top-k", "3",
            ]
        )
        assert code == 0
        first = capsys.readouterr().out
        assert "distributed" in first and "shards" in first
        ledger = json.loads(ckpt.read_text())
        assert ledger["completed"] and ledger["shards"]

        code = main(
            [
                "detect", str(planted_npz),
                "--workers", "1", "--checkpoint", str(ckpt), "--resume",
                "--top-k", "3",
            ]
        )
        assert code == 0
        resumed = capsys.readouterr().out
        assert "restored from checkpoint" in resumed
        # Bit-identical top-k across the resume cycle.
        tail = lambda text: [  # noqa: E731 - tiny local helper
            line for line in text.splitlines() if line.lstrip()[:1].isdigit()
        ]
        assert tail(first) == tail(resumed)

    def test_pipeline_checkpoint_directory(self, tmp_path, planted_npz, capsys):
        ckpt = tmp_path / "pipedir"
        argv = [
            "pipeline", str(planted_npz),
            "--retain", "8", "--top-k", "2",
            "--workers", "1", "--checkpoint", str(ckpt),
        ]
        assert main(argv) == 0
        assert "distributed" in capsys.readouterr().out
        assert (ckpt / "pipeline.json").exists()
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "best interaction" in out
        assert "restored from checkpoint" in out

    def test_detect_checkpoint_mismatch_is_friendly(
        self, tmp_path, planted_npz, capsys
    ):
        ckpt = tmp_path / "run.ckpt.json"
        assert main(
            ["detect", str(planted_npz), "--checkpoint", str(ckpt), "--top-k", "3"]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "detect", str(planted_npz),
                "--checkpoint", str(ckpt), "--resume", "--top-k", "5",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "fingerprint" in err

    def test_resume_without_checkpoint_rejected(self, planted_npz, capsys):
        for command in ("detect", "pipeline"):
            code = main([command, str(planted_npz), "--resume"])
            assert code == 2
            assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_threads_flag_keeps_in_process_parallelism(self, planted_npz, capsys):
        code = main(
            ["detect", str(planted_npz), "--threads", "2", "--top-k", "3"]
        )
        assert code == 0
        assert "best interaction" in capsys.readouterr().out


class TestInfoCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "CI3" in out and "GN4" in out

    @pytest.mark.parametrize("which", ["figure3", "figure4", "table3", "comparison"])
    def test_figures_single(self, capsys, which):
        assert main(["figures", which]) == 0
        out = capsys.readouterr().out
        assert which in out
