"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_npz, load_text


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["generate", "out.npz"],
            ["detect", "in.npz"],
            ["devices"],
            ["figures", "table3"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_default_all(self):
        assert build_parser().parse_args(["figures"]).which == "all"


class TestGenerateCommand:
    def test_generate_npz(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        code = main(["generate", str(out), "--snps", "12", "--samples", "96", "--seed", "5"])
        assert code == 0
        ds = load_npz(out)
        assert ds.n_snps == 12 and ds.n_samples == 96
        assert "wrote" in capsys.readouterr().out

    def test_generate_text_with_interaction(self, tmp_path):
        out = tmp_path / "ds.csv"
        code = main(
            [
                "generate", str(out),
                "--snps", "10", "--samples", "200",
                "--interaction", "1", "4", "7",
                "--model", "xor", "--effect", "0.9",
            ]
        )
        assert code == 0
        ds = load_text(out)
        assert ds.n_snps == 10


class TestDetectCommand:
    def test_detect_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "ds.npz"
        main(
            [
                "generate", str(out),
                "--snps", "14", "--samples", "512",
                "--interaction", "2", "6", "11", "--effect", "0.9", "--baseline", "0.05",
                "--seed", "7",
            ]
        )
        capsys.readouterr()
        code = main(["detect", str(out), "--approach", "cpu-v4", "--workers", "2", "--top-k", "3"])
        assert code == 0
        text = capsys.readouterr().out
        assert "best interaction" in text
        assert "cpu-v4" in text

    @pytest.mark.parametrize("order,planted", [(2, ("snp0002", "snp0006")), (4, None)])
    def test_detect_order(self, tmp_path, capsys, order, planted):
        out = tmp_path / "ds.npz"
        main(
            [
                "generate", str(out),
                "--snps", "12", "--samples", "512",
                "--interaction", "2", "6", "--effect", "0.9", "--baseline", "0.05",
                "--seed", "7",
            ]
        )
        capsys.readouterr()
        code = main(["detect", str(out), "--order", str(order), "--top-k", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "best interaction" in text
        if planted is not None:
            assert all(name in text for name in planted)

    def test_detect_rejects_unsupported_order(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "in.npz", "--order", "6"])

    def test_generate_accepts_pair_interaction(self, tmp_path):
        out = tmp_path / "pair.npz"
        code = main(
            [
                "generate", str(out),
                "--snps", "10", "--samples", "128",
                "--interaction", "1", "4",
            ]
        )
        assert code == 0
        assert load_npz(out).n_snps == 10


class TestInfoCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "CI3" in out and "GN4" in out

    @pytest.mark.parametrize("which", ["figure3", "figure4", "table3", "comparison"])
    def test_figures_single(self, capsys, which):
        assert main(["figures", which]) == 0
        out = capsys.readouterr().out
        assert which in out
