"""Unified telemetry plane: tracer, metrics registry, exporters, threading.

The contract under test, layer by layer:

* spans nest correctly within a process (thread-local parent stacks) and
  across processes (worker spans re-parent under the coordinator's
  dispatch span, all under one ``run_id``);
* the metrics registry's ``ops.*`` counters equal the legacy
  ``ApproachStats.op_counts`` op-for-op (§IV accounting has one source of
  truth, two views);
* ``telemetry="off"`` is a true no-op: bit-identical results, no
  telemetry keys in the stats extras;
* both trace formats (JSON-lines, Chrome trace-event) round-trip through
  :func:`repro.telemetry.load_trace` and validate against the Perfetto
  schema.
"""

from __future__ import annotations

import json

import pytest

from repro.core import EpistasisDetector
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.distributed import shutdown_fleets
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    check_telemetry_mode,
    current_run,
    finish_run,
    last_run,
    load_trace,
    new_run_id,
    resolve_telemetry_mode,
    start_run,
    summarize_spans,
    write_trace,
)

PLANTED = (3, 11, 17)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        SyntheticConfig(
            n_snps=20,
            n_samples=256,
            interaction=PlantedInteraction(snps=PLANTED, model="xor", effect=0.9),
            seed=11,
        )
    )


def detector(**overrides):
    kwargs = dict(approach="cpu-v4", order=3, top_k=5)
    kwargs.update(overrides)
    return EpistasisDetector(**kwargs)


def top_items(result):
    return [(i.snps, i.score) for i in result.top]


class TestModes:
    def test_valid_modes(self):
        for mode in ("off", "minimal", "full"):
            assert check_telemetry_mode(mode) == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="telemetry"):
            check_telemetry_mode("loud")

    def test_config_validates_mode(self):
        with pytest.raises(ValueError):
            detector(telemetry="verbose")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert resolve_telemetry_mode(None) == "off"
        monkeypatch.setenv("REPRO_TELEMETRY", "minimal")
        assert resolve_telemetry_mode(None) == "minimal"
        assert resolve_telemetry_mode("full") == "full"


class TestTracer:
    def test_span_nesting_same_thread(self):
        tracer = Tracer(new_run_id())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        spans = {s.name: s for s in tracer.spans}
        assert spans["inner"].parent_id == outer.span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].start >= spans["outer"].start
        assert spans["inner"].duration <= spans["outer"].duration

    def test_span_attrs_and_set(self):
        tracer = Tracer(new_run_id())
        with tracer.span("work", items=7) as span:
            span.set("chunks", 3)
        (recorded,) = tracer.spans
        assert recorded.attrs == {"items": 7, "chunks": 3}

    def test_cross_process_context_realigns_clock(self):
        tracer = Tracer(new_run_id())
        with tracer.span("dispatch"):
            ctx = tracer.context("full")
        remote = Tracer.from_context(ctx)
        with remote.span("remote.work"):
            pass
        (remote_span,) = remote.spans
        # The remote span re-parents under the shipped span and lands on
        # the coordinator's timeline (at/after the dispatch start).
        assert remote_span.parent_id == ctx.parent_id
        assert remote_span.run_id == tracer.run_id
        assert remote_span.start >= tracer.spans[0].start

    def test_absorb_merges_exported_spans(self):
        a = Tracer(new_run_id())
        with a.span("local"):
            pass
        b = Tracer(a.run_id)
        with b.span("elsewhere"):
            pass
        a.absorb(b.export_spans())
        assert sorted(s.name for s in a.spans) == ["elsewhere", "local"]


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("ops.AND", 5)
        reg.inc("ops.AND", 2)
        reg.set_gauge("engine.workers", 3)
        reg.observe("kernel.seconds", 0.5)
        reg.observe("kernel.seconds", 1.5)
        assert reg.counter("ops.AND") == 7
        assert reg.gauge("engine.workers") == 3
        doc = reg.as_dict()
        hist = doc["histograms"]["kernel.seconds"]
        assert hist["count"] == 2 and hist["sum"] == 2.0
        assert hist["min"] == 0.5 and hist["max"] == 1.5

    def test_prefix_view_strips_namespace(self):
        reg = MetricsRegistry()
        reg.merge_counters({"AND": 3, "POPCNT": 4}, prefix="ops.")
        reg.inc("traffic.bytes_loaded", 100)
        assert reg.counters("ops.") == {"AND": 3, "POPCNT": 4}


class TestSessionOwnership:
    def test_start_is_idempotent_while_active(self):
        run = start_run("minimal")
        try:
            assert start_run("full") is run  # join, not replace
            assert current_run() is run
        finally:
            finish_run(run)
        assert current_run() is None
        assert last_run() is run

    def test_finish_ignores_non_owner(self):
        run = start_run("minimal")
        try:
            other = object()
            finish_run(other)  # no-op: not the active run
            assert current_run() is run
        finally:
            finish_run(run)


class TestDetectTelemetry:
    def test_off_mode_is_invisible_and_bit_identical(self, dataset):
        base = detector().detect(dataset)
        off = detector(telemetry="off").detect(dataset)
        full = detector(telemetry="full").detect(dataset)
        assert top_items(base) == top_items(off) == top_items(full)
        assert "telemetry" not in off.stats.extra
        assert "telemetry" in full.stats.extra
        # run_id is always stamped so ledgers/exports correlate even off.
        assert off.stats.extra["run_id"]
        assert off.stats.extra["run_id"] != full.stats.extra["run_id"]

    def test_metrics_parity_with_op_counts(self, dataset):
        result = detector(telemetry="full").detect(dataset)
        run = last_run()
        assert run.run_id == result.stats.extra["run_id"]
        assert run.metrics.counters("ops.") == dict(result.stats.op_counts)
        assert run.metrics.counter("traffic.bytes_loaded") == (
            result.stats.bytes_loaded
        )
        assert run.metrics.counter("traffic.bytes_stored") == (
            result.stats.bytes_stored
        )

    def test_full_mode_span_hierarchy(self, dataset):
        detector(telemetry="full", n_workers=2).detect(dataset)
        spans = last_run().tracer.spans
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        assert set(by_name) >= {"detect", "plan", "device.run", "kernel"}
        (root,) = by_name["detect"]
        assert root.parent_id is None
        assert all(s.parent_id == root.span_id for s in by_name["plan"])
        assert all(s.parent_id == root.span_id for s in by_name["device.run"])
        device_ids = {s.span_id for s in by_name["device.run"]}
        assert all(s.parent_id in device_ids for s in by_name["kernel"])
        # Engine gauges landed alongside the spans.
        metrics = last_run().metrics
        assert metrics.gauge("engine.workers") == 2

    def test_minimal_mode_skips_kernel_sampling(self, dataset):
        detector(telemetry="minimal").detect(dataset)
        names = {s.name for s in last_run().tracer.spans}
        assert "detect" in names and "kernel" not in names


class TestDistributedTelemetry:
    def test_worker_spans_parent_under_coordinator(self, dataset):
        result = detector(telemetry="full").detect(dataset, workers=2)
        shutdown_fleets()
        run = last_run()
        spans = run.tracer.spans
        assert result.stats.extra["run_id"] == run.run_id
        assert {s.run_id for s in spans} == {run.run_id}
        assert len({s.pid for s in spans}) > 1  # worker processes reported
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, span.name
        (dispatch,) = [s for s in spans if s.name == "shard.dispatch"]
        shard_runs = [s for s in spans if s.name == "shard.run"]
        assert shard_runs
        assert all(s.parent_id == dispatch.span_id for s in shard_runs)
        # Exactly one root: the coordinator's detect span, covering the run.
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1 and roots[0].name == "detect"
        wall = max(s.start + s.duration for s in spans) - min(
            s.start for s in spans
        )
        assert roots[0].duration >= 0.95 * wall
        # Registry parity holds across the merge too.
        assert run.metrics.counters("ops.") == dict(result.stats.op_counts)

    def test_distributed_off_matches_full(self, dataset):
        off = detector(telemetry="off").detect(dataset, workers=2)
        full = detector(telemetry="full").detect(dataset, workers=2)
        shutdown_fleets()
        assert top_items(off) == top_items(full)
        assert "telemetry" not in off.stats.extra

    def test_checkpoint_ledger_records_run_ids(self, dataset, tmp_path):
        path = tmp_path / "ckpt.json"
        first = detector(telemetry="full").detect(
            dataset, workers=2, checkpoint=str(path)
        )
        second = detector(telemetry="full").detect(
            dataset, workers=2, checkpoint=str(path), resume=True
        )
        shutdown_fleets()
        ledger = json.loads(path.read_text())
        assert ledger["run_ids"] == [
            first.stats.extra["run_id"],
            second.stats.extra["run_id"],
        ]


class TestExporters:
    @pytest.fixture(scope="class")
    def run(self, dataset):
        detector(telemetry="full").detect(dataset, workers=2)
        shutdown_fleets()
        return last_run()

    def test_chrome_trace_schema(self, run, tmp_path):
        path = tmp_path / "trace.json"
        n = write_trace(run, str(path))
        assert n == len(run.tracer.spans)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in events)
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == n
        for event in xs:
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["ts"] >= 0 and event["dur"] > 0
            assert event["cat"] == "repro"
            assert event["args"]["span_id"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert any(label.startswith("repro pid=") for label in names)
        assert doc["metadata"]["run_id"] == run.run_id
        assert doc["metadata"]["host"]["schema_version"] == 1

    def test_round_trip_both_formats(self, run, tmp_path):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        write_trace(run, str(chrome))
        write_trace(run, str(jsonl))
        for path in (chrome, jsonl):
            manifest, spans, metrics = load_trace(str(path))
            assert manifest["run_id"] == run.run_id
            assert len(spans) == len(run.tracer.spans)
            assert metrics["counters"] == run.metrics.as_dict()["counters"]

    def test_summary_table(self, run):
        table = summarize_spans([s.to_dict() for s in run.tracer.spans])
        assert "shard.dispatch" in table
        assert "wall clock" in table

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestResultExports:
    def test_detection_result_to_dict_has_run_id(self, dataset):
        result = detector(telemetry="full").detect(dataset)
        assert result.to_dict()["run_id"] == result.stats.extra["run_id"]

    def test_pipeline_result_carries_run_id(self, dataset):
        from repro.pipeline import ExpandStage, ScreenStage, SearchPipeline

        pipeline = SearchPipeline(
            [ScreenStage(order=2, keep=10), ExpandStage(order=3)],
            approach="cpu-v4",
            top_k=3,
            telemetry="minimal",
        )
        result = pipeline.run(dataset)
        run = last_run()
        assert result.run_id == run.run_id
        assert result.to_dict()["run_id"] == run.run_id
        stage_spans = [
            s for s in run.tracer.spans if s.name == "pipeline.stage"
        ]
        assert [s.attrs["stage"] for s in stage_spans] == ["screen", "expand"]
