"""Tests of repro.distributed: sharding, checkpoint/resume, deterministic merge.

The acceptance properties of the subsystem:

* shard/worker invariance — ``workers=1`` and ``workers=N`` produce
  bit-identical top-k results (detect and pipeline), including under
  score ties;
* crash recovery — a run killed mid-sweep leaves a consistent ledger, and
  ``resume=True`` finishes the search without re-evaluating completed
  shards, reporting the same top-k as an uninterrupted run.

Process-pool spawns are expensive, so most coverage drives the identical
shard/checkpoint/merge code path inline (``workers=1``); two tests spin up
real OS worker processes to pin the multi-process guarantee.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines.mpi3snp import Mpi3snpBaseline
from repro.core import EpistasisDetector
from repro.core.detector import DetectorConfig
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.datasets.dataset import GenotypeDataset
from repro.distributed import (
    CheckpointStore,
    Shard,
    ShardPlanner,
    ShardView,
    dataset_fingerprint,
    merge_minima,
    merge_rows,
    row_sort_key,
    run_distributed,
)
from repro.engine import (
    CancellationToken,
    DenseRangeSource,
    EngineDevice,
    SubsetSource,
    TopKHeap,
)
from repro.perfmodel.distributed import (
    estimate_broadcast_seconds,
    estimate_distributed_run,
    shard_imbalance,
)
from repro.pipeline import ExpandStage, PermutationStage, ScreenStage, SearchPipeline


PLANTED = (3, 11, 17)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        SyntheticConfig(
            n_snps=20,
            n_samples=256,
            interaction=PlantedInteraction(snps=PLANTED, model="xor", effect=0.9),
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def tied_dataset():
    """All-zero genotypes: every combination builds the identical table.

    Every score ties, so the reported top-k is *pure* tie-breaking — the
    lexicographically smallest combinations must win no matter how the
    space is chunked or sharded.
    """
    rng = np.random.default_rng(5)
    return GenotypeDataset(
        genotypes=np.zeros((14, 64), dtype=np.int8),
        phenotypes=(rng.random(64) < 0.5).astype(np.int8),
    )


def top_items(result):
    return [(i.snps, i.score) for i in result.top]


class TestShardPlanner:
    def test_static_covers_space(self):
        shards = ShardPlanner(n_shards=7).plan(100, workers=3)
        assert [s.shard_id for s in shards] == list(range(7))
        assert shards[0].start == 0 and shards[-1].stop == 100
        assert sum(s.items for s in shards) == 100
        for a, b in zip(shards, shards[1:]):
            assert a.stop == b.start

    def test_static_default_independent_of_workers(self):
        one = ShardPlanner().plan(10_000, workers=1)
        four = ShardPlanner().plan(10_000, workers=4)
        assert [(s.start, s.stop) for s in one] == [(s.start, s.stop) for s in four]

    def test_small_totals_drop_empty_shards(self):
        shards = ShardPlanner(n_shards=8).plan(3, workers=2)
        assert len(shards) == 3
        assert all(s.items == 1 for s in shards)

    def test_zero_total(self):
        assert ShardPlanner().plan(0) == []

    def test_weighted_heterogeneous_shares(self):
        planner = ShardPlanner(
            strategy="weighted",
            shards_per_worker=2,
            worker_devices=[[EngineDevice(kind="cpu")], [EngineDevice(kind="gpu")]],
        )
        shards = planner.plan(10_000, workers=2, n_snps=256, n_samples=512, order=3)
        assert sum(s.items for s in shards) == 10_000
        cpu_items = sum(s.items for s in shards[:2])
        gpu_items = sum(s.items for s in shards[2:])
        # The catalogued GPU out-throughputs the catalogued CPU.
        assert gpu_items > cpu_items

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ShardPlanner(strategy="nope")
        with pytest.raises(ValueError):
            ShardPlanner(n_shards=0)
        with pytest.raises(ValueError):
            ShardPlanner().plan(-1)
        with pytest.raises(ValueError):
            ShardPlanner().plan(10, workers=0)
        # Explicit n_shards is a static-strategy knob; silently ignoring it
        # under "weighted" would hand back a surprise checkpoint geometry.
        with pytest.raises(ValueError, match="static strategy"):
            ShardPlanner(n_shards=8, strategy="weighted")


class TestShardView:
    def test_materialisation_matches_base_slice(self):
        base = DenseRangeSource(12, 3)
        view = ShardView(base, 40, 90)
        assert view.total == 50
        assert view.order == 3
        np.testing.assert_array_equal(
            view.materialize(0, 50), base.materialize(40, 90)
        )
        np.testing.assert_array_equal(
            view.materialize(5, 10), base.materialize(45, 50)
        )

    def test_subset_base_keeps_global_indices(self):
        retained = np.array([1, 4, 6, 9, 13], dtype=np.int64)
        base = SubsetSource(retained, 3)
        view = ShardView.of(base, Shard(0, 2, 8))
        combos = view.materialize(0, 6)
        assert set(combos.ravel()) <= set(retained.tolist())
        assert view.effective_snps == base.effective_snps

    def test_invalid_range(self):
        base = DenseRangeSource(10, 2)
        with pytest.raises(ValueError):
            ShardView(base, -1, 5)
        with pytest.raises(ValueError):
            ShardView(base, 0, base.total + 1)
        view = ShardView(base, 0, 5)
        with pytest.raises(ValueError):
            view.materialize(0, 6)


class TestMergeRows:
    def test_tie_break_by_combination_rank(self):
        a = [[1.0, [5, 9], None], [1.0, [0, 3], None]]
        b = [[1.0, [0, 2], None], [2.0, [0, 1], None]]
        merged = merge_rows([a, b], top_k=2)
        assert [tuple(r[1]) for r in merged] == [(0, 2), (0, 3)]

    def test_merge_matches_global_selection(self):
        rng = np.random.default_rng(3)
        rows = [
            [float(rng.integers(0, 4)), [int(i), int(i) + 1], None]
            for i in range(0, 60, 2)
        ]
        global_top = sorted(rows, key=row_sort_key)[:10]
        sharded = [rows[:10], rows[10:17], rows[17:]]
        per_shard_top = [sorted(s, key=row_sort_key)[:10] for s in sharded]
        assert merge_rows(per_shard_top, 10) == global_top

    def test_merge_minima(self):
        merged = merge_minima(
            [np.array([1.0, np.inf, 3.0]), None, np.array([2.0, 0.5, np.inf])]
        )
        np.testing.assert_array_equal(merged, [1.0, 0.5, 3.0])
        assert merge_minima([None, None]) is None

    def test_minima_payload_is_strict_json(self):
        # inf (SNP unseen by a shard) must serialise as null, not the
        # non-standard Infinity token — and round-trip through the merge.
        from repro.distributed.merge import minima_to_payload

        payload = minima_to_payload(np.array([1.5, np.inf, 0.25]))
        assert payload == [1.5, None, 0.25]
        assert "Infinity" not in json.dumps(payload)
        merged = merge_minima([payload, [None, 2.0, None]])
        np.testing.assert_array_equal(merged, [1.5, 2.0, 0.25])


class TestTopKHeapTieBreak:
    def test_chunk_boundaries_cannot_reorder_ties(self):
        combos = np.array([[0, 5], [0, 1], [0, 4], [0, 2], [0, 3]])
        scores = np.ones(5)
        whole = TopKHeap(2)
        whole.push_batch(combos, scores)
        split = TopKHeap(2)
        split.push_batch(combos[:3], scores[:3])
        split.push_batch(combos[3:], scores[3:])
        assert [i.snps for i in whole.items] == [(0, 1), (0, 2)]
        assert [i.snps for i in split.items] == [i.snps for i in whole.items]


class TestCheckpointStore:
    def _fingerprint(self, dataset):
        return {"dataset": dataset_fingerprint(dataset), "search": {"top_k": 3}}

    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "run.ckpt.json"
        shards = ShardPlanner(n_shards=4).plan(100)
        store = CheckpointStore(path)
        assert store.begin(self._fingerprint(dataset), shards) == {}
        store.record_shard(2, {"top": [[1.0, [0, 1, 2], None]], "n_items": 25})
        store.record_shard(0, {"top": [], "n_items": 25})
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert sorted(doc["shards"]) == ["0", "2"]

        fresh = CheckpointStore(path)
        restored = fresh.begin(self._fingerprint(dataset), shards, resume=True)
        assert sorted(restored) == [0, 2]
        assert restored[2]["top"][0][1] == [0, 1, 2]
        assert fresh.done_ids() == [0, 2]

    def test_resume_without_ledger_starts_fresh(self, dataset, tmp_path):
        store = CheckpointStore(tmp_path / "missing.json")
        shards = ShardPlanner(n_shards=2).plan(10)
        assert store.begin(self._fingerprint(dataset), shards, resume=True) == {}

    def test_fingerprint_mismatch_rejected(self, dataset, tmp_path):
        path = tmp_path / "run.ckpt.json"
        shards = ShardPlanner(n_shards=2).plan(10)
        CheckpointStore(path).begin(self._fingerprint(dataset), shards)
        other = CheckpointStore(path)
        with pytest.raises(ValueError, match="fingerprint"):
            other.begin({"different": True}, shards, resume=True)

    def test_shard_plan_mismatch_rejected(self, dataset, tmp_path):
        path = tmp_path / "run.ckpt.json"
        CheckpointStore(path).begin(
            self._fingerprint(dataset), ShardPlanner(n_shards=2).plan(10)
        )
        with pytest.raises(ValueError, match="shard boundaries"):
            CheckpointStore(path).begin(
                self._fingerprint(dataset),
                ShardPlanner(n_shards=5).plan(10),
                resume=True,
            )

    def test_same_shape_different_candidates_rejected(self, dataset, tmp_path):
        """Content identity: a same-sized but different subset must not splice."""
        ckpt = str(tmp_path / "subset.ckpt.json")
        config = DetectorConfig(approach="cpu-v4", top_k=3)
        subset_a = SubsetSource(np.arange(0, 10, dtype=np.int64), 3)
        subset_b = SubsetSource(np.arange(10, 20, dtype=np.int64), 3)
        run_distributed(
            dataset, subset_a, config=config, checkpoint=ckpt, shard_budget=1
        )
        with pytest.raises(ValueError, match="fingerprint"):
            run_distributed(
                dataset, subset_b, config=config, checkpoint=ckpt, resume=True
            )

    def test_state_section(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.json")
        store.begin({"f": 1}, ShardPlanner(n_shards=1).plan(5))
        store.set_state("rng", {"state": 123})
        reloaded = CheckpointStore(tmp_path / "s.json")
        reloaded.load()
        assert reloaded.get_state("rng") == {"state": 123}


class TestDistributedDetect:
    def test_inline_sharded_matches_plain_detect(self, dataset):
        plain = EpistasisDetector(approach="cpu-v4", top_k=7).detect(dataset)
        sharded = EpistasisDetector(approach="cpu-v4", top_k=7).detect(
            dataset, workers=1, checkpoint=None
        )
        # workers=1 without checkpoint is the ordinary in-process path;
        # force the sharded path through run_distributed instead.
        outcome = run_distributed(
            dataset,
            DenseRangeSource(dataset.n_snps, 3),
            config=DetectorConfig(approach="cpu-v4", top_k=7),
            workers=1,
        )
        assert outcome.completed
        assert top_items(plain) == top_items(sharded)
        assert top_items(plain) == top_items(outcome.result)
        assert outcome.result.best_snps == PLANTED

    def test_tied_scores_shard_invariant(self, tied_dataset):
        plain = EpistasisDetector(
            approach="cpu-v1", order=2, top_k=8, chunk_size=97
        ).detect(tied_dataset)
        outcome = run_distributed(
            tied_dataset,
            DenseRangeSource(tied_dataset.n_snps, 2),
            config=DetectorConfig(approach="cpu-v1", order=2, top_k=8, chunk_size=13),
            workers=1,
            planner=ShardPlanner(n_shards=9),
        )
        assert top_items(plain) == top_items(outcome.result)
        # With every score tied, the winners are exactly the first 8
        # combinations in lexicographic (combination-rank) order.
        expected = [(0, j) for j in range(1, 9)]
        assert [i.snps for i in outcome.result.top] == expected

    def test_multiprocess_bit_identical(self, dataset):
        """The acceptance property: workers=N merges to the workers=1 result."""
        single = EpistasisDetector(approach="cpu-v4", top_k=7).detect(dataset)
        multi = EpistasisDetector(approach="cpu-v4", top_k=7).detect(
            dataset, workers=3
        )
        assert top_items(multi) == top_items(single)
        assert multi.stats.extra["distributed"]["mode"] == "processes"
        assert multi.stats.extra["distributed"]["workers"] == 3

    def test_shard_budget_then_resume_skips_done_shards(self, dataset, tmp_path):
        """Kill-mid-run simulation: a partial ledger resumes to completion."""
        ckpt = str(tmp_path / "sweep.ckpt.json")
        config = DetectorConfig(approach="cpu-v4", top_k=5)
        source = DenseRangeSource(dataset.n_snps, 3)

        partial = run_distributed(
            dataset, source, config=config, workers=1, checkpoint=ckpt,
            shard_budget=3,
        )
        assert not partial.completed
        assert partial.shards_done == 3
        assert partial.result is None
        ledger = json.loads((tmp_path / "sweep.ckpt.json").read_text())
        assert len(ledger["shards"]) == 3 and not ledger["completed"]

        resumed = run_distributed(
            dataset, source, config=config, workers=1, checkpoint=ckpt,
            resume=True,
        )
        assert resumed.completed
        assert resumed.shards_restored == 3
        assert resumed.items_restored == partial.items_evaluated
        # No completed shard was re-evaluated.
        assert resumed.items_evaluated == source.total - partial.items_evaluated
        plain = EpistasisDetector(approach="cpu-v4", top_k=5).detect(dataset)
        assert top_items(resumed.result) == top_items(plain)
        assert json.loads((tmp_path / "sweep.ckpt.json").read_text())["completed"]
        # Accounting stays complete across the resume: restored shards'
        # recorded op counts merge with the fresh shards', so the stats
        # cover the whole search, not just this invocation's slice.
        uninterrupted = run_distributed(
            dataset, source, config=config, workers=1
        )
        assert resumed.op_counts == uninterrupted.op_counts
        assert resumed.bytes_loaded == uninterrupted.bytes_loaded
        for entry in resumed.result.stats.extra["devices"].values():
            assert entry["items"] == source.total

    def test_workers_must_be_positive(self, dataset):
        with pytest.raises(ValueError, match="workers"):
            EpistasisDetector(approach="cpu-v4").detect(dataset, workers=0)
        with pytest.raises(ValueError, match="workers"):
            EpistasisDetector(approach="cpu-v4").detect(dataset, workers=-2)

    def test_screen_minima_resume_via_side_files(self, dataset, tmp_path):
        """Per-shard minima land in side files and merge bit-exactly on resume."""
        config = DetectorConfig(approach="cpu-v4", order=2, top_k=3)
        source = DenseRangeSource(dataset.n_snps, 2)
        whole = run_distributed(
            dataset, source, config=config, collect_snp_minima=True
        )
        ckpt = tmp_path / "screen.ckpt.json"
        run_distributed(
            dataset, source, config=config, checkpoint=str(ckpt),
            collect_snp_minima=True, shard_budget=4,
        )
        side_files = list((tmp_path / "screen.ckpt.json.minima").glob("*.npy"))
        assert len(side_files) == 4
        # The JSON ledger itself stays small: minima are referenced, not inlined.
        ledger = json.loads(ckpt.read_text())
        assert all(
            "snp_minima" not in rec and rec["snp_minima_file"]
            for rec in ledger["shards"].values()
        )
        resumed = run_distributed(
            dataset, source, config=config, checkpoint=str(ckpt),
            collect_snp_minima=True, resume=True,
        )
        np.testing.assert_array_equal(resumed.snp_minima, whole.snp_minima)

    def test_progress_counts_restored_items(self, dataset, tmp_path):
        ckpt = str(tmp_path / "p.ckpt.json")
        config = DetectorConfig(approach="cpu-v4", top_k=3)
        source = DenseRangeSource(dataset.n_snps, 3)
        run_distributed(
            dataset, source, config=config, checkpoint=ckpt, shard_budget=2
        )
        seen = []
        run_distributed(
            dataset, source, config=config, checkpoint=ckpt, resume=True,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[0][0] > 0  # restored items reported up front
        assert seen[-1] == (source.total, source.total)

    def test_cancellation_stops_before_spawning(self, dataset):
        cancel = CancellationToken()
        cancel.cancel()  # pre-cancelled: the coordinator must not start work
        with pytest.raises(RuntimeError, match="cancelled"):
            EpistasisDetector(approach="cpu-v4").detect_candidates(
                dataset,
                DenseRangeSource(dataset.n_snps, 3),
                cancel=cancel,
                workers=2,
            )

    def test_approach_instance_rejected(self, dataset):
        from repro.core.approaches import get_approach

        detector = EpistasisDetector(approach=get_approach("cpu-v4"))
        with pytest.raises(TypeError, match="registry name"):
            detector.detect(dataset, workers=2)

    def test_observe_rejected_on_distributed_path(self, dataset):
        detector = EpistasisDetector(approach="cpu-v4")
        with pytest.raises(ValueError, match="observe"):
            detector.detect_candidates(
                dataset,
                DenseRangeSource(dataset.n_snps, 3),
                observe=lambda w, c, s: None,
                workers=2,
            )

    def test_empty_source_rejected(self, dataset):
        with pytest.raises(ValueError, match="empty"):
            run_distributed(
                dataset,
                ShardView(DenseRangeSource(dataset.n_snps, 3), 0, 0),
                config=DetectorConfig(approach="cpu-v4"),
            )


class TestDistributedPipeline:
    def _staged(self, dataset, **kwargs):
        return EpistasisDetector(approach="cpu-v4", order=3, top_k=5).detect_staged(
            dataset, screen_order=2, keep_snps=10, **kwargs
        )

    def test_inline_sharded_matches_plain(self, dataset, tmp_path):
        plain = self._staged(dataset)
        sharded = self._staged(
            dataset, workers=1, checkpoint=str(tmp_path / "pipe")
        )
        assert top_items(plain) == top_items(sharded)
        assert plain.retained_snps == sharded.retained_snps

    def test_resume_replays_completed_stages(self, dataset, tmp_path):
        ckpt = str(tmp_path / "pipe")
        first = self._staged(dataset, workers=1, checkpoint=ckpt)
        resumed = self._staged(dataset, workers=1, checkpoint=ckpt, resume=True)
        assert top_items(first) == top_items(resumed)
        assert all(s.extra.get("resumed") for s in resumed.stages)

    def test_pipeline_fingerprint_mismatch_rejected(self, dataset, tmp_path):
        ckpt = str(tmp_path / "pipe")
        self._staged(dataset, workers=1, checkpoint=ckpt)
        other = SearchPipeline(
            [ScreenStage(order=2, keep=6), ExpandStage(order=3)],
            approach="cpu-v4",
            checkpoint=ckpt,
            resume=True,
        )
        with pytest.raises(ValueError, match="pipeline checkpoint"):
            other.run(dataset)

    def test_permutation_rng_state_resumes_mid_loop(self, dataset, tmp_path):
        """A cancelled permutation null resumes its RNG stream bit-exactly."""
        stages = [
            ScreenStage(order=2, keep=10),
            ExpandStage(order=3),
            PermutationStage(n_permutations=30, seed=13, checkpoint_every=5),
        ]
        baseline = SearchPipeline(
            list(stages), approach="cpu-v4", top_k=5
        ).run(dataset)

        ckpt = str(tmp_path / "perm")
        cancel = CancellationToken()
        calls = {"n": 0}

        def cancel_mid_null(stage, done, total):
            if stage == "permutation":
                calls["n"] += 1
                if calls["n"] >= 12:
                    cancel.cancel()

        interrupted = SearchPipeline(
            list(stages), approach="cpu-v4", top_k=5, checkpoint=ckpt
        )
        with pytest.raises(RuntimeError, match="permutation stage cancelled"):
            interrupted.run(dataset, cancel=cancel, progress=cancel_mid_null)

        resumed = SearchPipeline(
            list(stages), approach="cpu-v4", top_k=5, checkpoint=ckpt, resume=True
        ).run(dataset)
        assert resumed.p_values == baseline.p_values
        assert top_items(resumed) == top_items(baseline)
        perm_report = resumed.stages[-1]
        assert perm_report.extra.get("resumed_at", 0) >= 10


class TestMpi3snpRanks:
    def test_threads_and_processes_agree(self, dataset):
        threads = Mpi3snpBaseline(n_ranks=2, top_k=5).detect(dataset)
        procs = Mpi3snpBaseline(n_ranks=2, top_k=5, processes=True).detect(dataset)
        assert top_items(threads) == top_items(procs)
        assert threads.stats.extra["rank_mode"] == "threads"
        assert procs.stats.extra["rank_mode"] == "processes"
        assert procs.stats.extra["load_imbalance"] >= 1.0
        assert threads.best_snps == PLANTED

    def test_matches_reference_detector(self, dataset):
        reference = EpistasisDetector(approach="cpu-v4", top_k=5).detect(dataset)
        baseline = Mpi3snpBaseline(n_ranks=3, top_k=5).detect(dataset)
        assert top_items(baseline) == top_items(reference)


class TestPerfmodelDistributed:
    def test_shard_imbalance(self):
        assert shard_imbalance([10, 10, 10, 10], 4) == pytest.approx(1.0)
        assert shard_imbalance([40], 4) == pytest.approx(4.0)
        assert shard_imbalance([], 4) == 1.0
        with pytest.raises(ValueError):
            shard_imbalance([1], 0)

    def test_broadcast_scales_with_workers(self):
        one = estimate_broadcast_seconds(1 << 20, 1)
        four = estimate_broadcast_seconds(1 << 20, 4)
        assert four == pytest.approx(4 * one)

    def test_distributed_run_estimate_shape(self):
        estimates = [
            estimate_distributed_run(
                n_candidates=5_000_000,
                n_samples=4096,
                n_snps=1024,
                n_workers=w,
            )
            for w in (1, 2, 4)
        ]
        seconds = [e["estimated_seconds"] for e in estimates]
        assert seconds[0] > seconds[1] > seconds[2]
        for e in estimates:
            assert 0.0 < e["parallel_efficiency"] <= 1.0 + 1e-9
            assert e["imbalance"] >= 1.0
        assert estimates[0]["speedup_vs_single"] == pytest.approx(1.0)
