"""Tests of the quality-control / preprocessing module."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.qc import (
    apply_qc,
    call_rates,
    filter_by_maf,
    hardy_weinberg_pvalues,
    impute_missing,
    minor_allele_frequencies,
)
from repro.datasets.synthetic import generate_null_dataset


class TestMaf:
    def test_known_values(self):
        geno = np.array(
            [
                [0, 0, 0, 0],      # MAF 0
                [1, 1, 1, 1],      # allele freq 0.5
                [2, 2, 2, 2],      # allele freq 1 -> folded to 0
                [0, 1, 2, 1],      # 4/8 = 0.5
                [0, 0, 0, 1],      # 1/8 = 0.125
            ],
            dtype=np.int8,
        )
        maf = minor_allele_frequencies(geno)
        assert maf == pytest.approx([0.0, 0.5, 0.0, 0.5, 0.125])

    def test_missing_ignored(self):
        geno = np.array([[1, -1, 1, -1]], dtype=np.int8)
        assert minor_allele_frequencies(geno)[0] == pytest.approx(0.5)

    def test_folding_symmetry(self, rng):
        geno = rng.integers(0, 3, size=(20, 200)).astype(np.int8)
        flipped = (2 - geno).astype(np.int8)
        assert np.allclose(
            minor_allele_frequencies(geno), minor_allele_frequencies(flipped)
        )

    def test_bounds(self, small_dataset):
        maf = minor_allele_frequencies(small_dataset.genotypes)
        assert ((maf >= 0) & (maf <= 0.5)).all()


class TestCallRatesAndImputation:
    def test_call_rates(self):
        geno = np.array([[0, 1, 2, -1], [0, -1, -1, -1]], dtype=np.int8)
        assert call_rates(geno) == pytest.approx([0.75, 0.25])

    def test_impute_missing_uses_major_genotype(self):
        geno = np.array([[0, 0, 2, -1], [1, 1, -1, 2]], dtype=np.int8)
        imputed, n = impute_missing(geno)
        assert n == 2
        assert imputed[0, 3] == 0
        assert imputed[1, 2] == 1
        assert (imputed >= 0).all()

    def test_impute_no_missing_is_noop(self, small_dataset):
        imputed, n = impute_missing(small_dataset.genotypes)
        assert n == 0
        assert np.array_equal(imputed, small_dataset.genotypes)

    @given(
        n_missing=st.integers(min_value=0, max_value=50),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_imputation_count_matches(self, n_missing, seed):
        rng = np.random.default_rng(seed)
        geno = rng.integers(0, 3, size=(5, 40)).astype(np.int8)
        flat = rng.choice(geno.size, size=n_missing, replace=False)
        geno.reshape(-1)[flat] = -1
        imputed, n = impute_missing(geno)
        assert n == n_missing
        assert (imputed >= 0).all() and (imputed <= 2).all()


class TestHardyWeinberg:
    def test_equilibrium_snp_high_pvalue(self, rng):
        p = 0.3
        n = 5000
        geno = rng.choice([0, 1, 2], size=(1, n), p=[(1 - p) ** 2, 2 * p * (1 - p), p**2])
        assert hardy_weinberg_pvalues(geno.astype(np.int8))[0] > 0.01

    def test_gross_violation_low_pvalue(self):
        # Half genotype 0, half genotype 2, no heterozygotes at all.
        geno = np.array([[0] * 500 + [2] * 500], dtype=np.int8)
        assert hardy_weinberg_pvalues(geno)[0] < 1e-10

    def test_monomorphic_is_trivially_in_equilibrium(self):
        geno = np.zeros((1, 100), dtype=np.int8)
        assert hardy_weinberg_pvalues(geno)[0] == 1.0


class TestFilters:
    def test_filter_by_maf(self):
        ds = generate_null_dataset(30, 400, seed=4, maf_range=(0.05, 0.5))
        filtered = filter_by_maf(ds, min_maf=0.2)
        assert 0 < filtered.n_snps <= ds.n_snps
        assert minor_allele_frequencies(filtered.genotypes).min() >= 0.2

    def test_filter_by_maf_all_removed(self):
        ds = generate_null_dataset(5, 50, seed=1, maf_range=(0.05, 0.08))
        with pytest.raises(ValueError):
            filter_by_maf(ds, min_maf=0.49)


class TestApplyQc:
    def _raw(self, rng):
        ds = generate_null_dataset(40, 300, seed=9, maf_range=(0.05, 0.5))
        geno = ds.genotypes.astype(np.int8).copy()
        # SNP 0: mostly missing; SNP 1: monomorphic (zero MAF); SNP 2: gross
        # HWE violation in everyone.
        geno[0, : int(0.2 * 300)] = -1
        geno[1, :] = 0
        geno[2, :150] = 0
        geno[2, 150:] = 2
        return geno, ds.phenotypes

    def test_pipeline(self, rng):
        geno, phen = self._raw(rng)
        dataset, report = apply_qc(
            geno, phen, min_maf=0.05, min_call_rate=0.9, hwe_alpha=1e-6,
            hwe_controls_only=False,
        )
        assert report.n_snps_in == 40
        assert dataset.n_snps == report.n_snps_out == len(report.kept)
        assert 0 in report.removed_low_call_rate
        assert 1 in report.removed_low_maf
        assert 2 in report.removed_hwe
        assert report.n_missing_imputed >= 0
        assert (dataset.genotypes >= 0).all()
        assert "QC:" in report.summary()

    def test_filters_can_be_disabled(self, rng):
        geno, phen = self._raw(rng)
        dataset, report = apply_qc(
            geno, phen, min_maf=0.0, min_call_rate=0.0, hwe_alpha=None
        )
        assert dataset.n_snps == 40
        assert report.n_missing_imputed > 0

    def test_sample_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_qc(np.zeros((3, 10), dtype=np.int8), np.zeros(9, dtype=np.int8))

    def test_everything_removed_rejected(self):
        geno = np.zeros((3, 50), dtype=np.int8)  # all monomorphic
        phen = np.array([0, 1] * 25, dtype=np.int8)
        with pytest.raises(ValueError):
            apply_qc(geno, phen, min_maf=0.05)

    def test_qc_then_detection_pipeline(self):
        """Cleaned data feeds straight into the three-way detector."""
        from repro.core import EpistasisDetector

        ds = generate_null_dataset(15, 256, seed=3)
        geno = ds.genotypes.astype(np.int8).copy()
        geno[3, ::7] = -1
        cleaned, report = apply_qc(geno, ds.phenotypes, min_maf=0.01, hwe_alpha=None)
        result = EpistasisDetector(approach="cpu-v2").detect(cleaned)
        assert result.stats.n_combinations == cleaned.n_combinations(3)
