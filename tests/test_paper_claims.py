"""Checks of the paper's headline qualitative claims against the reproduction.

Each test names the claim (section / figure / table) and asserts the
corresponding *shape* — orderings, approximate factors, cross-overs — in the
reproduced models and kernels.  Quantitative paper-vs-measured numbers are
recorded in EXPERIMENTS.md; these tests keep the repository honest about the
claims it says it reproduces.
"""

from __future__ import annotations

import pytest

from repro.carm import characterize_cpu_approaches, characterize_gpu_approaches
from repro.devices import ALL_CPUS, ALL_GPUS, cpu, gpu
from repro.experiments.table3 import run_table3, summary_speedups
from repro.perfmodel import energy_efficiency, estimate_cpu, estimate_gpu, heterogeneous_throughput
from repro.perfmodel.counters import approach_counts


class TestSection4Claims:
    def test_claim_instruction_reduction_162_to_57(self):
        """§IV-A: the naïve kernel needs 162 instructions per word, the
        split kernel 57 (nominal counting), a ~65% reduction."""
        assert 27 * 6 == 162
        assert 3 + 27 * (1 + 1) == 57

    def test_claim_memory_traffic_reduction_one_third(self):
        """§IV-A: removing the phenotype and the third genotype cuts the
        transferred bytes by roughly one third."""
        v1 = approach_counts(1, "cpu")
        v2 = approach_counts(2, "cpu")
        reduction = 1.0 - v2.bytes_per_element / v1.bytes_per_element
        assert 0.25 <= reduction <= 0.45

    def test_claim_blocking_parameters(self):
        """§IV-A / §V-B: <BS, BP> = <5, 400> on Ice Lake SP, <5, 96> elsewhere."""
        assert cpu("CI3").blocking_parameters() == (5, 400)
        for key in ("CI1", "CI2", "CA1", "CA2"):
            assert cpu(key).blocking_parameters() == (5, 96)


class TestFigure2Claims:
    def test_cpu_ladder_speedups(self):
        """§V-A: V2 ≈ 2x V1 runtime, V3 ≈ 1.2x over V2, V4 ≈ 7.5x over V3,
        8.5x total (bands are checked loosely)."""
        spec = cpu("CI3")
        perf = [
            estimate_cpu(spec, v, n_snps=2048).elements_per_second_total for v in (1, 2, 3, 4)
        ]
        assert 1.2 < perf[1] / perf[0] < 3.0
        assert 1.0 <= perf[2] / perf[1] < 1.6
        assert 5.0 < perf[3] / perf[2] < 14.0
        assert perf[3] / perf[0] > 6.0

    def test_cpu_v4_reaches_vector_peak(self):
        _, points = characterize_cpu_approaches(cpu("CI3"))
        assert {p.name: p for p in points}["V4"].bound_by == "Int32 Vector ADD Peak"

    def test_gpu_v1_v2_dram_bound_v3_jumps(self):
        _, points = characterize_gpu_approaches(gpu("GI2"))
        by = {p.name: p for p in points}
        assert by["V1"].bound_by == "DRAM->C"
        assert by["V2"].bound_by == "DRAM->C"
        assert by["V3"].elements_per_second > 10 * by["V2"].elements_per_second


class TestFigure3Claims:
    def test_ci3_avx512_is_best_per_core(self):
        """§V-B: AVX-512 CI3 is 2.5-5x the per-core throughput of the rest."""
        best = estimate_cpu(cpu("CI3"), 4, n_snps=8192).giga_elements_per_second_per_core
        for key in ("CI1", "CI2", "CA1", "CA2"):
            other = estimate_cpu(cpu(key), 4, n_snps=8192).giga_elements_per_second_per_core
            assert 2.0 < best / other < 8.0

    def test_vector_popcnt_is_the_differentiator(self):
        """§V-B: per cycle, AVX-512 CI3 is ≈3.8x every scalar-POPCNT CPU."""
        best = estimate_cpu(cpu("CI3"), 4, n_snps=8192).elements_per_cycle_per_core
        for key in ("CI1", "CA1", "CA2"):
            other = estimate_cpu(cpu(key), 4, n_snps=8192).elements_per_cycle_per_core
            assert 2.5 < best / other < 6.5

    def test_zen2_wider_vectors_do_not_help(self):
        """§V-B: Zen -> Zen2 doubled the vector width but, lacking vector
        POPCNT, the per-cycle throughput stays roughly the same."""
        zen = estimate_cpu(cpu("CA1"), 4, n_snps=8192).elements_per_cycle_per_core
        zen2 = estimate_cpu(cpu("CA2"), 4, n_snps=8192).elements_per_cycle_per_core
        assert 0.6 < zen2 / zen < 1.6

    def test_skylake_sp_avx512_worse_than_avx(self):
        spec = cpu("CI2")
        avx512 = estimate_cpu(spec, 4, n_snps=8192)
        avx = estimate_cpu(spec, 4, isa=spec.avx_vector_isa, n_snps=8192)
        assert avx512.elements_per_second_per_core < avx.elements_per_second_per_core


class TestFigure4Claims:
    def test_popcnt_per_cu_orders_gpus(self):
        """§V-C: per cycle and per CU, the ordering follows Table II's
        POPCNT throughput (Titan Xp > Volta/Turing/Ampere > AMD > Intel)."""
        per_cycle = {
            spec.key: estimate_gpu(spec, 4, n_snps=2048).elements_per_cycle_per_cu
            for spec in ALL_GPUS
        }
        assert per_cycle["GN1"] > per_cycle["GN2"] > per_cycle["GA1"] > per_cycle["GA3"] > per_cycle["GI1"]

    def test_frequency_differentiates_equal_popcnt_gpus(self):
        """§V-C: Titan RTX beats Titan V per second only through frequency."""
        gn2 = estimate_gpu(gpu("GN2"), 4, n_snps=2048)
        gn3 = estimate_gpu(gpu("GN3"), 4, n_snps=2048)
        assert gn3.elements_per_second_per_cu > gn2.elements_per_second_per_cu
        assert gn3.elements_per_cycle_per_cu == pytest.approx(gn2.elements_per_cycle_per_cu)

    def test_rdna2_frequency_compensates_fewer_popcnt_units(self):
        """§V-C: per second per CU, the RX 6900 XT overtakes Vega20/CDNA
        thanks to its much higher clock, despite fewer POPCNT units."""
        ga3 = estimate_gpu(gpu("GA3"), 4, n_snps=2048)
        ga1 = estimate_gpu(gpu("GA1"), 4, n_snps=2048)
        assert ga3.elements_per_cycle_per_cu < ga1.elements_per_cycle_per_cu
        assert ga3.elements_per_second_per_cu > ga1.elements_per_second_per_cu


class TestSectionVDClaims:
    def test_gpus_win_through_parallelism_not_per_core_efficiency(self):
        """§V-D: normalised per lane/stream core, CPUs and GPUs are similar;
        the GPU advantage comes from sheer unit counts."""
        ci3 = estimate_cpu(cpu("CI3"), 4, n_snps=8192)
        gn3 = estimate_gpu(gpu("GN3"), 4, n_snps=8192)
        cpu_eff = ci3.elements_per_cycle_per_core_per_lane
        gpu_eff = gn3.elements_per_cycle_per_stream_core
        assert 0.3 < cpu_eff / gpu_eff < 3.5
        assert gn3.elements_per_second_total > 1.5 * ci3.elements_per_second_total

    def test_ci3_is_about_half_a_titan_rtx(self):
        ci3 = estimate_cpu(cpu("CI3"), 4, n_snps=8192).elements_per_second_total
        gn3 = estimate_gpu(gpu("GN3"), 4, n_snps=8192).elements_per_second_total
        assert 0.3 < ci3 / gn3 < 0.8

    def test_heterogeneous_band(self):
        combined = heterogeneous_throughput([cpu("CI3"), gpu("GN1")]) / 1e9
        assert 2000 < combined < 4500

    def test_only_a100_beats_mi100(self):
        mi100 = estimate_gpu(gpu("GA2"), 4, n_snps=8192).elements_per_second_total
        for key in ("GN1", "GN2", "GN3", "GA1", "GA3", "GI1", "GI2"):
            assert estimate_gpu(gpu(key), 4, n_snps=8192).elements_per_second_total < mi100 * 1.05
        assert estimate_gpu(gpu("GN4"), 4, n_snps=8192).elements_per_second_total > mi100

    def test_iris_xe_max_most_efficient(self):
        efficiencies = {s.key: energy_efficiency(s) for s in list(ALL_CPUS) + list(ALL_GPUS)}
        assert max(efficiencies, key=efficiencies.get) == "GI2"


class TestTable3Claims:
    def test_this_work_beats_mpi3snp_everywhere(self):
        for row in run_table3():
            if row["baseline"] == "mpi3snp" and row["repro_speedup"] is not None:
                assert row["repro_speedup"] > 1.0

    def test_gap_to_mpi3snp_grows_with_dataset(self):
        rows = {
            (r["device"], r["n_snps"]): r["repro_speedup"]
            for r in run_table3()
            if r["baseline"] == "mpi3snp" and r["repro_speedup"]
        }
        assert rows[("GN2", 40000)] > rows[("GN2", 10000)]
        assert rows[("CI3", 40000)] > rows[("CI3", 10000)]

    def test_parity_with_hand_tuned_cuda(self):
        """Table III: against [29], this work is within a few percent on the
        NVIDIA GPUs (0.89x–1.05x in the paper; ±25% accepted here)."""
        for row in run_table3():
            if row["baseline"] == "nobre2020" and row["repro_speedup"] is not None:
                assert 0.75 < row["repro_speedup"] < 1.25

    def test_order_of_magnitude_vs_campos2020(self):
        rows = {r["device"]: r for r in run_table3() if r["baseline"] == "campos2020"}
        assert rows["GI1"]["repro_speedup"] > 5
        assert rows["CI1"]["repro_speedup"] > 3

    def test_aggregate_speedups_in_band(self):
        """Abstract: 3.9x average (7.3x CPU, 2.8x GPU), 10.6x maximum."""
        agg = summary_speedups()
        assert 2.0 < agg["overall_mean_speedup"] < 8.0
        assert agg["cpu_mean_speedup"] > agg["gpu_mean_speedup"]
        assert agg["max_speedup"] > 6.0
