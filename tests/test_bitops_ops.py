"""Tests of the instrumented bitwise operations and the operation counter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitops.ops import OpCounter, and2, and3, andnot, nor2, popcount_words
from repro.bitops.popcount import popcount32


@pytest.fixture()
def words(rng):
    return (
        rng.integers(0, 2**32, size=16, dtype=np.uint32),
        rng.integers(0, 2**32, size=16, dtype=np.uint32),
        rng.integers(0, 2**32, size=16, dtype=np.uint32),
    )


class TestOpCounter:
    def test_starts_empty(self):
        counter = OpCounter()
        assert counter.total_ops == 0
        assert counter.total_bytes == 0
        assert counter.as_dict() == {}

    def test_add_and_totals(self):
        counter = OpCounter()
        counter.add("AND", 10)
        counter.add("POPCNT", 5)
        counter.add_load(4)
        counter.add_store(2)
        assert counter.ops["AND"] == 10
        assert counter.total_ops == 15  # loads/stores excluded
        assert counter.bytes_loaded == 16
        assert counter.bytes_stored == 8
        assert counter.total_bytes == 24

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add("AND", -1)

    def test_arithmetic_intensity(self):
        counter = OpCounter()
        counter.add("AND", 100)
        counter.add_load(10)  # 40 bytes
        assert counter.arithmetic_intensity == pytest.approx(2.5)

    def test_arithmetic_intensity_no_traffic(self):
        counter = OpCounter()
        counter.add("AND", 1)
        assert counter.arithmetic_intensity == float("inf")
        assert OpCounter().arithmetic_intensity == 0.0

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("AND", 3)
        b.add("AND", 4)
        b.add("POPCNT", 1)
        b.add_load(2)
        a.merge(b)
        assert a.ops == {"AND": 7, "POPCNT": 1, "LOAD": 2}
        assert a.bytes_loaded == 8

    def test_iteration_sorted(self):
        counter = OpCounter()
        counter.add("XOR")
        counter.add("AND")
        assert [k for k, _ in counter] == ["AND", "XOR"]


class TestInstrumentedOps:
    def test_and2(self, words):
        a, b, _ = words
        counter = OpCounter()
        out = and2(a, b, counter)
        assert np.array_equal(out, a & b)
        assert counter.ops["AND"] == 16

    def test_and3(self, words):
        a, b, c = words
        counter = OpCounter()
        out = and3(a, b, c, counter)
        assert np.array_equal(out, a & b & c)
        assert counter.ops["AND"] == 32  # two ANDs per word

    def test_nor2(self, words):
        a, b, _ = words
        counter = OpCounter()
        out = nor2(a, b, counter)
        assert np.array_equal(out, np.bitwise_not(a | b))
        assert counter.ops["NOR"] == 16
        assert counter.ops["OR"] == 16
        assert counter.ops["XOR"] == 16

    def test_andnot(self, words):
        a, b, _ = words
        counter = OpCounter()
        out = andnot(a, b, counter)
        assert np.array_equal(out, a & ~b)
        assert counter.ops["AND"] == 16
        assert counter.ops["NOT"] == 16

    def test_popcount_words(self, words):
        a, _, _ = words
        counter = OpCounter()
        counts = popcount_words(a, counter)
        assert np.array_equal(counts, popcount32(a))
        assert counter.ops["POPCNT"] == 16
        assert counter.ops["ADD"] == 16

    def test_popcount_words_reduced(self, words):
        a, _, _ = words
        total = popcount_words(a, None, reduce_axis=-1)
        assert total == popcount32(a).sum()

    def test_ops_work_without_counter(self, words):
        a, b, c = words
        assert np.array_equal(and3(a, b, c), a & b & c)
        assert np.array_equal(nor2(a, b), ~(a | b))

    def test_nor_identity_with_genotype_planes(self, small_dataset):
        """NOR of planes 0 and 1 equals plane 2 on real data (plus padding)."""
        from repro.bitops.packing import pack_bitplanes, packed_word_count

        planes = pack_bitplanes(small_dataset.genotypes)
        n = small_dataset.n_samples
        mask = np.full(packed_word_count(n), 0xFFFFFFFF, dtype=np.uint32)
        rem = n % 32
        if rem:
            mask[-1] = np.uint32((1 << rem) - 1)
        inferred = nor2(planes[:, 0], planes[:, 1]) & mask
        assert np.array_equal(inferred, planes[:, 2])
