"""Shared fixtures of the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    GenotypeDataset,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
    generate_null_dataset,
)

#: SNP indices of the interaction planted in ``planted_dataset``.
PLANTED_TRIPLET = (3, 11, 17)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator for ad-hoc data."""
    return np.random.default_rng(20220126)


@pytest.fixture(scope="session")
def tiny_dataset() -> GenotypeDataset:
    """10 SNPs x 64 samples — cheap enough for the slowest oracles."""
    return generate_null_dataset(10, 64, seed=1)


@pytest.fixture(scope="session")
def small_dataset() -> GenotypeDataset:
    """24 SNPs x 384 samples — the workhorse fixture (2024 triplets)."""
    return generate_null_dataset(24, 384, seed=2)


@pytest.fixture(scope="session")
def odd_sample_dataset() -> GenotypeDataset:
    """A dataset whose sample count is not a multiple of 32 and whose
    case/control split is unbalanced — exercises the padding-mask paths."""
    return generate_dataset(
        SyntheticConfig(n_snps=16, n_samples=205, case_fraction=0.37, seed=3)
    )


@pytest.fixture(scope="session")
def planted_dataset() -> GenotypeDataset:
    """A dataset with a strong planted three-way interaction at (3, 11, 17)."""
    return generate_dataset(
        SyntheticConfig(
            n_snps=24,
            n_samples=2048,
            interaction=PlantedInteraction(
                snps=PLANTED_TRIPLET, model="threshold", baseline=0.03, effect=0.9
            ),
            seed=4,
        )
    )
