"""Tests of combination enumeration, ranking and block scheduling."""

from __future__ import annotations

from itertools import combinations as itertools_combinations
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinations import (
    block_combination_count,
    combination_count,
    combination_from_rank,
    combination_rank,
    combinations_from_ranks,
    combinations_in_block_triple,
    generate_combinations,
    iter_combination_chunks,
    iter_triangular_blocks,
)


class TestCombinationCount:
    @pytest.mark.parametrize("n,k,expected", [(3, 3, 1), (10, 3, 120), (24, 3, 2024),
                                              (2048, 3, comb(2048, 3)), (5, 2, 10)])
    def test_values(self, n, k, expected):
        assert combination_count(n, k) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            combination_count(-1, 3)
        with pytest.raises(ValueError):
            combination_count(5, 0)


class TestRankUnrank:
    def test_first_and_last(self):
        assert combination_rank((0, 1, 2), 10) == 0
        assert combination_rank((7, 8, 9), 10) == comb(10, 3) - 1
        assert combination_from_rank(0, 10, 3) == (0, 1, 2)
        assert combination_from_rank(comb(10, 3) - 1, 10, 3) == (7, 8, 9)

    def test_matches_itertools_order(self):
        expected = list(itertools_combinations(range(8), 3))
        for rank, combo in enumerate(expected):
            assert combination_from_rank(rank, 8, 3) == combo
            assert combination_rank(combo, 8) == rank

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            combination_rank((2, 1, 3), 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            combination_rank((0, 1, 10), 10)
        with pytest.raises(ValueError):
            combination_from_rank(comb(10, 3), 10, 3)

    @given(
        n=st.integers(min_value=3, max_value=60),
        data=st.data(),
    )
    @settings(max_examples=100)
    def test_roundtrip(self, n, data):
        rank = data.draw(st.integers(min_value=0, max_value=comb(n, 3) - 1))
        combo = combination_from_rank(rank, n, 3)
        assert len(combo) == 3
        assert combo[0] < combo[1] < combo[2] < n
        assert combination_rank(combo, n) == rank

    def test_order_2_and_4(self):
        assert combination_from_rank(0, 6, 2) == (0, 1)
        assert combination_from_rank(comb(6, 4) - 1, 6, 4) == (2, 3, 4, 5)

    @pytest.mark.parametrize("order", [2, 4, 5])
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_other_orders(self, order, data):
        """rank/unrank are inverses at every supported order, not just 3."""
        n = data.draw(st.integers(min_value=order, max_value=40))
        rank = data.draw(st.integers(min_value=0, max_value=comb(n, order) - 1))
        combo = combination_from_rank(rank, n, order)
        assert len(combo) == order
        assert all(a < b for a, b in zip(combo, combo[1:]))
        assert combo[-1] < n
        assert combination_rank(combo, n) == rank

    @pytest.mark.parametrize("order", [2, 4, 5])
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_unrank_then_rank_hits_every_window(self, order, data):
        """Windows of consecutive ranks unrank to consecutive combinations."""
        n = data.draw(st.integers(min_value=order, max_value=24))
        total = comb(n, order)
        start = data.draw(st.integers(min_value=0, max_value=total - 1))
        count = data.draw(st.integers(min_value=1, max_value=min(32, total - start)))
        window = generate_combinations(n, order, start_rank=start, count=count)
        ranks = [combination_rank(tuple(row), n) for row in window]
        assert ranks == list(range(start, start + count))


class TestVectorizedUnranking:
    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_matches_itertools(self, order):
        n = 9
        expected = np.array(list(itertools_combinations(range(n), order)))
        ranks = np.arange(comb(n, order))
        assert np.array_equal(combinations_from_ranks(ranks, n, order), expected)

    @pytest.mark.parametrize("order", [2, 3, 4, 5])
    def test_scattered_ranks_match_scalar_unranking(self, order):
        n = 30
        rng = np.random.default_rng(7)
        ranks = rng.integers(0, comb(n, order), size=128)
        got = combinations_from_ranks(ranks, n, order)
        for rank, row in zip(ranks, got):
            assert tuple(row) == combination_from_rank(int(rank), n, order)

    def test_empty_and_invalid(self):
        assert combinations_from_ranks(np.array([], dtype=np.int64), 10, 3).shape == (0, 3)
        with pytest.raises(ValueError):
            combinations_from_ranks(np.array([-1]), 10, 3)
        with pytest.raises(ValueError):
            combinations_from_ranks(np.array([comb(10, 3)]), 10, 3)
        with pytest.raises(ValueError):
            combinations_from_ranks(np.array([[0, 1]]), 10, 3)


class TestGenerateCombinations:
    def test_full_space_matches_itertools(self):
        expected = np.array(list(itertools_combinations(range(9), 3)))
        assert np.array_equal(generate_combinations(9, 3), expected)

    def test_range_extraction(self):
        full = generate_combinations(12, 3)
        part = generate_combinations(12, 3, start_rank=37, count=50)
        assert np.array_equal(part, full[37:87])

    def test_empty_range(self):
        assert generate_combinations(12, 3, start_rank=5, count=0).shape == (0, 3)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            generate_combinations(6, 3, start_rank=0, count=comb(6, 3) + 1)

    @given(
        n=st.integers(min_value=3, max_value=30),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_windows_are_consistent(self, n, data):
        total = comb(n, 3)
        start = data.draw(st.integers(min_value=0, max_value=total - 1))
        count = data.draw(st.integers(min_value=1, max_value=min(64, total - start)))
        window = generate_combinations(n, 3, start_rank=start, count=count)
        assert window.shape == (count, 3)
        # Strictly increasing triplets, in strictly increasing rank order.
        assert ((window[:, 0] < window[:, 1]) & (window[:, 1] < window[:, 2])).all()
        ranks = [combination_rank(tuple(row), n) for row in window]
        assert ranks == list(range(start, start + count))


class TestChunkIteration:
    def test_chunks_cover_space_exactly_once(self):
        chunks = list(iter_combination_chunks(13, 3, chunk_size=37))
        stacked = np.vstack(chunks)
        assert stacked.shape[0] == comb(13, 3)
        assert np.array_equal(stacked, generate_combinations(13, 3))
        assert all(c.shape[0] <= 37 for c in chunks)

    def test_sub_range(self):
        chunks = list(iter_combination_chunks(13, 3, chunk_size=16, start_rank=10, stop_rank=70))
        stacked = np.vstack(chunks)
        assert stacked.shape[0] == 60

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_combination_chunks(10, 3, chunk_size=0))


class TestTriangularBlocks:
    @pytest.mark.parametrize("n_snps,block_size", [(10, 3), (16, 5), (24, 8), (7, 7), (9, 16)])
    def test_blocks_cover_space_exactly_once(self, n_snps, block_size):
        seen = set()
        for ranges in iter_triangular_blocks(n_snps, block_size):
            combos = combinations_in_block_triple(ranges)
            for row in combos:
                triple = tuple(int(v) for v in row)
                assert triple not in seen
                seen.add(triple)
        assert len(seen) == comb(n_snps, 3)

    def test_block_count_formula(self):
        n_blocks = 0
        for _ in iter_triangular_blocks(24, 5):
            n_blocks += 1
        assert n_blocks == block_combination_count(24, 5)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(iter_triangular_blocks(10, 0))
