"""Tests of the result containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import ApproachStats, DetectionResult, Interaction


class TestInteraction:
    def test_ordering_by_score_then_snps(self):
        a = Interaction(snps=(0, 1, 2), score=1.0)
        b = Interaction(snps=(0, 1, 3), score=1.0)
        c = Interaction(snps=(5, 6, 7), score=0.5)
        assert sorted([b, a, c]) == [c, a, b]

    def test_str_with_names(self):
        inter = Interaction(snps=(1, 2, 3), score=12.5, snp_names=("rs1", "rs2", "rs3"))
        text = str(inter)
        assert "rs1" in text and "12.5" in text

    def test_str_without_names(self):
        assert "(1, 2, 3)" in str(Interaction(snps=(1, 2, 3), score=1.0))


class TestApproachStats:
    def test_derived_quantities(self):
        stats = ApproachStats(
            approach="cpu-v4",
            n_combinations=100,
            n_samples=64,
            elapsed_seconds=2.0,
            op_counts={"AND": 1000, "POPCNT": 500, "LOAD": 200},
            bytes_loaded=800,
            bytes_stored=200,
        )
        assert stats.elements == 6400
        assert stats.elements_per_second == pytest.approx(3200.0)
        assert stats.total_ops == 1500
        assert stats.arithmetic_intensity == pytest.approx(1.5)

    def test_zero_elapsed(self):
        stats = ApproachStats("x", 1, 1, 0.0)
        assert np.isnan(stats.elements_per_second)

    def test_zero_traffic(self):
        stats = ApproachStats("x", 1, 1, 1.0, op_counts={"AND": 1})
        assert np.isnan(stats.arithmetic_intensity)


class TestDetectionResult:
    def _stats(self):
        return ApproachStats("cpu-v2", 4, 10, 0.1)

    def test_from_scores(self):
        combos = np.array([[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]])
        scores = np.array([5.0, 1.0, 3.0, 2.0])
        result = DetectionResult.from_scores(combos, scores, self._stats(), top_k=3)
        assert result.best_snps == (0, 1, 3)
        assert result.best_score == 1.0
        assert [i.snps for i in result.top] == [(0, 1, 3), (1, 2, 3), (0, 2, 3)]

    def test_from_scores_with_names(self):
        combos = np.array([[0, 1, 2]])
        result = DetectionResult.from_scores(
            combos, np.array([1.0]), self._stats(), snp_names=["a", "b", "c"]
        )
        assert result.best.snp_names == ("a", "b", "c")

    def test_top_k_clamped(self):
        combos = np.array([[0, 1, 2], [0, 1, 3]])
        result = DetectionResult.from_scores(
            combos, np.array([2.0, 1.0]), self._stats(), top_k=10
        )
        assert len(result.top) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DetectionResult.from_scores(
                np.array([[0, 1, 2]]), np.array([1.0, 2.0]), self._stats()
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DetectionResult.from_scores(
                np.empty((0, 3)), np.empty(0), self._stats()
            )

    def test_contains(self):
        combos = np.array([[0, 1, 2], [3, 4, 5]])
        result = DetectionResult.from_scores(
            combos, np.array([1.0, 2.0]), self._stats(), top_k=2
        )
        assert result.contains((2, 0, 1))
        assert not result.contains((0, 1, 5))

    def test_summary_mentions_key_fields(self):
        combos = np.array([[0, 1, 2]])
        result = DetectionResult.from_scores(combos, np.array([1.0]), self._stats())
        text = result.summary()
        assert "cpu-v2" in text
        assert "best interaction" in text
