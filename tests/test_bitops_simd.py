"""Tests of the software SIMD model (VectorISA / VectorRegisterFile)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitops.ops import OpCounter
from repro.bitops.popcount import popcount32
from repro.bitops.simd import ISA_PRESETS, VectorISA, VectorRegisterFile, isa_for_name


class TestVectorISA:
    def test_presets_cover_the_papers_machines(self):
        assert set(ISA_PRESETS) == {
            "scalar64",
            "avx-128",
            "avx2-256",
            "avx512-skx",
            "avx512-vpopcnt",
        }

    @pytest.mark.parametrize(
        "name,width,lanes32,lanes64",
        [
            ("scalar64", 64, 2, 1),
            ("avx-128", 128, 4, 2),
            ("avx2-256", 256, 8, 4),
            ("avx512-skx", 512, 16, 8),
            ("avx512-vpopcnt", 512, 16, 8),
        ],
    )
    def test_geometry(self, name, width, lanes32, lanes64):
        isa = isa_for_name(name)
        assert isa.width_bits == width
        assert isa.lanes32 == lanes32
        assert isa.lanes64 == lanes64
        assert isa.samples_per_register == lanes32 * 32

    def test_only_ice_lake_has_vector_popcnt(self):
        assert ISA_PRESETS["avx512-vpopcnt"].has_vector_popcnt
        for name, isa in ISA_PRESETS.items():
            if name != "avx512-vpopcnt":
                assert not isa.has_vector_popcnt

    def test_skx_needs_two_extracts(self):
        assert ISA_PRESETS["avx512-skx"].extracts_per_lane == 2
        assert ISA_PRESETS["avx2-256"].extracts_per_lane == 1

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            VectorISA("bogus", 96, has_vector_popcnt=False)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            isa_for_name("avx1024")

    def test_popcount_cost_vector_path(self):
        cost = ISA_PRESETS["avx512-vpopcnt"].popcount_instruction_cost()
        assert cost == {"VPOPCNT": 1, "VREDUCE_ADD": 1}

    def test_popcount_cost_scalar_path(self):
        cost = ISA_PRESETS["avx2-256"].popcount_instruction_cost()
        assert cost == {"EXTRACT": 4, "POPCNT": 4, "ADD": 4}
        cost_skx = ISA_PRESETS["avx512-skx"].popcount_instruction_cost()
        assert cost_skx["EXTRACT"] == 16  # 8 lanes x 2 extracts


class TestVectorRegisterFile:
    @pytest.fixture()
    def operands(self, rng):
        return (
            rng.integers(0, 2**32, size=20, dtype=np.uint32),
            rng.integers(0, 2**32, size=20, dtype=np.uint32),
        )

    @pytest.mark.parametrize("isa_name", ["avx-128", "avx2-256", "avx512-vpopcnt"])
    def test_logical_ops_are_exact(self, operands, isa_name):
        a, b = operands
        rf = VectorRegisterFile(isa_for_name(isa_name))
        assert np.array_equal(rf.vand(a, b), a & b)
        assert np.array_equal(rf.vor(a, b), a | b)
        assert np.array_equal(rf.vxor(a, b), a ^ b)
        assert np.array_equal(rf.vnor(a, b), ~(a | b))
        assert np.array_equal(rf.vand3(a, b, a), a & b & a)

    def test_register_count_accounting(self, operands):
        a, b = operands  # 20 words
        counter = OpCounter()
        rf = VectorRegisterFile(isa_for_name("avx2-256"), counter)  # 8 lanes
        rf.vand(a, b)
        # ceil(20 / 8) = 3 vector instructions
        assert counter.ops["VAND"] == 3
        rf.load(a)
        assert counter.ops["VLOAD"] == 3
        assert counter.bytes_loaded == 80

    def test_vnor_costs_two_instructions(self, operands):
        a, b = operands
        counter = OpCounter()
        rf = VectorRegisterFile(isa_for_name("avx512-skx"), counter)  # 16 lanes
        rf.vnor(a, b)
        assert counter.ops["VOR"] == 2
        assert counter.ops["VXOR"] == 2

    @pytest.mark.parametrize("isa_name", list(ISA_PRESETS))
    def test_popcount_accumulate_value(self, operands, isa_name):
        a, _ = operands
        rf = VectorRegisterFile(isa_for_name(isa_name))
        assert rf.vpopcount_accumulate(a) == int(popcount32(a).sum())

    def test_popcount_accumulate_vector_isa_counts(self, operands):
        a, _ = operands  # 20 words -> 2 AVX-512 registers
        counter = OpCounter()
        rf = VectorRegisterFile(isa_for_name("avx512-vpopcnt"), counter)
        rf.vpopcount_accumulate(a)
        assert counter.ops["VPOPCNT"] == 2
        assert counter.ops["VREDUCE_ADD"] == 2
        assert "EXTRACT" not in counter.ops

    def test_popcount_accumulate_scalar_isa_counts(self, operands):
        a, _ = operands  # 20 words -> 3 AVX2 registers -> 12 64-bit lanes
        counter = OpCounter()
        rf = VectorRegisterFile(isa_for_name("avx2-256"), counter)
        rf.vpopcount_accumulate(a)
        assert counter.ops["EXTRACT"] == 12
        assert counter.ops["POPCNT"] == 12
        assert "VPOPCNT" not in counter.ops

    def test_odd_word_count_popcount(self, rng):
        words = rng.integers(0, 2**32, size=7, dtype=np.uint32)
        rf = VectorRegisterFile(isa_for_name("avx2-256"))
        assert rf.vpopcount_accumulate(words) == int(popcount32(words).sum())

    def test_store_accounting(self, operands):
        a, _ = operands
        counter = OpCounter()
        rf = VectorRegisterFile(isa_for_name("avx-128"), counter)
        rf.store(a)
        assert counter.ops["VSTORE"] == 5
        assert counter.bytes_stored == 80

    def test_instructions_per_combination_mix(self):
        mix = ISA_PRESETS["avx512-vpopcnt"].instructions_per_combination()
        assert mix["VAND"] == 2
        assert mix["VPOPCNT"] == 1
        mix_scalar = ISA_PRESETS["avx-128"].instructions_per_combination()
        assert mix_scalar["EXTRACT"] == 2
