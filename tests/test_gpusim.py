"""Tests of the functional GPU simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.contingency import contingency_oracle
from repro.core.scoring import K2Score
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset
from repro.datasets.synthetic import generate_null_dataset
from repro.devices import gpu
from repro.gpusim import (
    AccessLog,
    DeviceBuffer,
    NDRange,
    SimulatedGpu,
    TRANSACTION_BYTES,
    epistasis_kernel_naive,
    epistasis_kernel_split,
    make_split_kernel_args,
)


class TestNDRange:
    def test_linearisation(self):
        items = list(NDRange((2, 3), local_size=(1, 3), subgroup_size=2))
        assert len(items) == 6
        assert items[0].global_id == (0, 0)
        assert items[-1].global_id == (1, 2)
        assert items[4].linear_id == 4
        assert items[4].group_id == 1
        assert items[4].local_id == 1
        assert items[4].subgroup_id == 2
        assert items[4].lane == 0

    def test_default_single_group(self):
        r = NDRange((10,))
        assert r.work_group_size == 10
        assert r.n_work_groups == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            NDRange((0,))
        with pytest.raises(ValueError):
            NDRange((4,), local_size=(3,))
        with pytest.raises(ValueError):
            NDRange((4, 4), local_size=(2,))
        with pytest.raises(ValueError):
            NDRange((2, 2, 2, 2, 2, 2))  # 6-D exceeds the 5-way kernels
        with pytest.raises(ValueError):
            NDRange((4,), subgroup_size=0)
        assert NDRange((2, 2, 2, 2)).total_items == 16  # 4-way grids are valid

    def test_total_items(self):
        assert NDRange((3, 4, 5)).total_items == 60


class TestDeviceBufferAndAccessLog:
    def test_flat_addressing(self):
        buf = DeviceBuffer(np.arange(24, dtype=np.uint32).reshape(2, 3, 4))
        assert buf.flat_index(1, 2, 3) == 23
        assert buf.peek(1, 2, 3) == 23
        with pytest.raises(IndexError):
            buf.flat_index(2, 0, 0)
        with pytest.raises(ValueError):
            buf.flat_index(0, 0)

    def test_nbytes(self):
        assert DeviceBuffer(np.zeros((4, 8), dtype=np.uint32)).nbytes == 128

    def test_coalesced_vs_scattered_loads(self):
        """32 lanes loading consecutive words -> 4 transactions; strided -> 32."""
        data = np.arange(4096, dtype=np.uint32)
        buf = DeviceBuffer(data)
        coalesced = AccessLog()
        scattered = AccessLog()
        for lane in range(32):
            buf.load(coalesced, 0, 0, lane)
            buf.load(scattered, 0, 0, lane * 64)
        assert coalesced.warp_load_instructions == 1
        assert coalesced.total_transactions == 32 * 4 // TRANSACTION_BYTES
        assert scattered.total_transactions == 32
        assert scattered.transactions_per_warp_load == 32.0

    def test_log_totals(self):
        buf = DeviceBuffer(np.zeros(8, dtype=np.uint32))
        log = AccessLog()
        buf.load(log, 0, 0, 3)
        buf.load(log, 0, 1, 4)
        assert log.total_loads == 2
        assert log.total_bytes == 8


class TestSimulatedKernels:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_null_dataset(9, 137, seed=17)

    @pytest.fixture(scope="class")
    def split(self, dataset):
        return PhenotypeSplitDataset.from_dataset(dataset)

    @pytest.mark.parametrize("layout", ["snp-major", "transposed", "tiled"])
    def test_split_kernel_matches_oracle(self, dataset, split, layout):
        args = make_split_kernel_args(split, layout=layout, block_size=4)
        kernel = epistasis_kernel_split(args)
        sim = SimulatedGpu()
        results, stats = sim.launch(kernel, NDRange((9, 9, 9), subgroup_size=32))
        assert stats.n_active_threads == 84  # C(9, 3)
        assert stats.n_threads == 729
        k2 = K2Score()
        for combo, table, score in results:
            oracle = contingency_oracle(dataset.genotypes, dataset.phenotypes, combo)
            assert np.array_equal(table, oracle)
            assert score == pytest.approx(float(k2.score(oracle[None])[0]))

    def test_naive_kernel_matches_oracle(self, dataset):
        binarized = BinarizedDataset.from_dataset(dataset)
        kernel = epistasis_kernel_naive(binarized)
        results, stats = SimulatedGpu().launch(kernel, NDRange((9, 9, 9)))
        for combo, table, _ in results[:10]:
            oracle = contingency_oracle(dataset.genotypes, dataset.phenotypes, combo)
            assert np.array_equal(table, oracle)

    def test_best_thread_matches_detector(self, dataset, split):
        from repro.core import EpistasisDetector

        args = make_split_kernel_args(split, layout="tiled", block_size=4)
        results, _ = SimulatedGpu().launch(
            epistasis_kernel_split(args), NDRange((9, 9, 9))
        )
        best_combo, _, best_score = min(results, key=lambda r: r[2])
        host = EpistasisDetector(approach="gpu-v4").detect(dataset)
        assert tuple(best_combo) == host.best_snps
        assert best_score == pytest.approx(host.best_score)

    def test_cycle_estimate_present_with_spec(self, split):
        args = make_split_kernel_args(split, layout="tiled", block_size=4)
        sim = SimulatedGpu(gpu("GN4"))
        _, stats = sim.launch(epistasis_kernel_split(args), NDRange((9, 9, 9)))
        assert stats.estimated_cycles is not None and stats.estimated_cycles > 0
        assert stats.bound in ("popcnt", "integer", "memory")
        assert stats.instructions["POPCNT"] > 0

    def test_bad_layout_rejected(self, split):
        with pytest.raises(ValueError):
            make_split_kernel_args(split, layout="zigzag")

    def test_kernel_rejects_1d_range(self, split):
        args = make_split_kernel_args(split, layout="tiled", block_size=4)
        kernel = epistasis_kernel_split(args)
        sim = SimulatedGpu()
        with pytest.raises(ValueError):
            sim.launch(kernel, NDRange((10,)))

    @pytest.mark.parametrize("order", [2, 4])
    def test_split_kernel_other_orders_match_oracle(self, dataset, split, order):
        """The kernel's order is the grid dimensionality: 2-D and 4-D work."""
        from math import comb

        args = make_split_kernel_args(split, layout="tiled", block_size=4)
        kernel = epistasis_kernel_split(args)
        n = dataset.n_snps
        results, stats = SimulatedGpu().launch(kernel, NDRange((n,) * order))
        assert stats.n_active_threads == comb(n, order)
        for combo, table, _ in results:
            assert table.shape == (3**order, 2)
            oracle = contingency_oracle(dataset.genotypes, dataset.phenotypes, combo)
            assert np.array_equal(table, oracle)

    def test_naive_kernel_order_2_matches_oracle(self, dataset):
        binarized = BinarizedDataset.from_dataset(dataset)
        kernel = epistasis_kernel_naive(binarized)
        results, _ = SimulatedGpu().launch(kernel, NDRange((9, 9)))
        for combo, table, _ in results[:10]:
            oracle = contingency_oracle(dataset.genotypes, dataset.phenotypes, combo)
            assert np.array_equal(table, oracle)


class TestCoalescingAcrossLayouts:
    def test_transposed_layout_needs_fewer_transactions(self):
        """One warp of threads on consecutive SNP triplets: the SNP-major
        layout scatters their loads, the transposed layout coalesces them."""
        dataset = generate_null_dataset(40, 512, seed=23)
        # The expected transaction geometry below (8 words per class, 64-byte
        # SNP-major stride) is the paper's 32-bit word analysis, so the
        # encoding is pinned to the paper layout.
        split = PhenotypeSplitDataset.from_dataset(dataset, layout="u32")
        tx = {}
        for layout in ("snp-major", "transposed"):
            args = make_split_kernel_args(split, layout=layout, block_size=8)
            kernel = epistasis_kernel_split(args)
            _, stats = SimulatedGpu().launch(
                kernel, NDRange((1, 2, 40), subgroup_size=32)
            )
            tx[layout] = stats.transactions_per_warp_load
        # With 8 words per class the SNP-major stride is 64 bytes: every lane
        # lands in its own transaction, while the transposed layout packs 8
        # lanes per 32-byte transaction.
        assert tx["snp-major"] > 3.0 * tx["transposed"]
