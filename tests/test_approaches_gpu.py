"""Tests of the four GPU approaches (functional layout kernels)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approaches import (
    APPROACHES,
    GpuNaiveApproach,
    GpuNoPhenotypeApproach,
    GpuTiledApproach,
    GpuTransposedApproach,
    get_approach,
    list_approaches,
)
from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle_many

GPU_NAMES = ["gpu-v1", "gpu-v2", "gpu-v3", "gpu-v4"]


@pytest.fixture(scope="module")
def combos24():
    return generate_combinations(24, 3)[::11]  # 184 triplets


class TestRegistry:
    def test_names_and_versions(self):
        assert list_approaches("gpu") == GPU_NAMES
        for i, name in enumerate(GPU_NAMES, start=1):
            assert APPROACHES[name].version == i
            assert APPROACHES[name].device == "gpu"

    def test_alias(self):
        assert get_approach("gpu").name == "gpu-v4"


@pytest.mark.parametrize("name", GPU_NAMES)
class TestAgainstOracle:
    def test_matches_oracle(self, name, small_dataset, combos24):
        approach = get_approach(name)
        encoded = approach.prepare(small_dataset)
        tables = approach.build_tables(encoded, combos24)
        oracle = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos24
        )
        assert np.array_equal(tables, oracle)

    def test_unbalanced_odd_samples(self, name, odd_sample_dataset):
        approach = get_approach(name)
        encoded = approach.prepare(odd_sample_dataset)
        combos = generate_combinations(odd_sample_dataset.n_snps, 3)[:80]
        tables = approach.build_tables(encoded, combos)
        oracle = contingency_oracle_many(
            odd_sample_dataset.genotypes, odd_sample_dataset.phenotypes, combos
        )
        assert np.array_equal(tables, oracle)

    def test_rejects_out_of_range(self, name, small_dataset):
        approach = get_approach(name)
        encoded = approach.prepare(small_dataset)
        with pytest.raises(IndexError):
            approach.build_tables(encoded, np.array([[0, 1, 200]]))


class TestCoalescingAccounting:
    def test_coalescing_factors(self):
        assert GpuNaiveApproach.coalescing_factor == 32.0
        assert GpuNoPhenotypeApproach.coalescing_factor == 32.0
        assert GpuTransposedApproach.coalescing_factor == 1.0
        assert GpuTiledApproach.coalescing_factor == 1.0

    def test_transactions_scale_with_coalescing(self, small_dataset, combos24):
        uncoalesced = get_approach("gpu-v2")
        coalesced = get_approach("gpu-v3")
        for approach in (uncoalesced, coalesced):
            encoded = approach.prepare(small_dataset)
            approach.build_tables(encoded, combos24)
        tx_uncoalesced = uncoalesced.extra_stats()["memory_transactions"]
        tx_coalesced = coalesced.extra_stats()["memory_transactions"]
        assert tx_uncoalesced == pytest.approx(32 * tx_coalesced)

    def test_extra_stats_layout_labels(self):
        assert get_approach("gpu-v1").extra_stats()["layout"] == "snp-major"
        assert get_approach("gpu-v3").extra_stats()["layout"] == "transposed"
        assert get_approach("gpu-v4").extra_stats()["layout"] == "tiled"


class TestTiledApproach:
    @pytest.mark.parametrize("block_size", [1, 4, 8, 32])
    def test_block_size_does_not_change_results(self, small_dataset, combos24, block_size):
        approach = GpuTiledApproach(block_size=block_size)
        tables = approach.build_tables(approach.prepare(small_dataset), combos24[:60])
        oracle = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos24[:60]
        )
        assert np.array_equal(tables, oracle)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GpuTiledApproach(block_size=0)
        with pytest.raises(ValueError):
            GpuTiledApproach(bsched=0)

    def test_extra_stats_include_tiling(self):
        stats = GpuTiledApproach(block_size=64, bsched=128).extra_stats()
        assert stats["block_size"] == 64
        assert stats["bsched"] == 128


class TestCrossDeviceConsistency:
    def test_gpu_and_cpu_best_approaches_agree(self, small_dataset, combos24):
        cpu_best = get_approach("cpu-v4")
        gpu_best = get_approach("gpu-v4")
        cpu_tables = cpu_best.build_tables(cpu_best.prepare(small_dataset), combos24)
        gpu_tables = gpu_best.build_tables(gpu_best.prepare(small_dataset), combos24)
        assert np.array_equal(cpu_tables, gpu_tables)
