"""Tests of the synthetic dataset generators and penetrance models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import (
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
    generate_null_dataset,
    penetrance_table,
)


class TestPenetranceTable:
    @pytest.mark.parametrize("model", ["threshold", "multiplicative", "xor"])
    def test_shape_and_bounds(self, model):
        table = penetrance_table(model, order=3, baseline=0.1, effect=0.7)
        assert table.shape == (3, 3, 3)
        assert table.min() >= 0.1 - 1e-12
        assert table.max() <= 0.7 + 1e-12

    def test_threshold_semantics(self):
        table = penetrance_table("threshold", baseline=0.05, effect=0.9)
        assert table[0, 1, 2] == pytest.approx(0.05)  # one SNP has no minor allele
        assert table[1, 1, 1] == pytest.approx(0.9)
        assert table[2, 2, 2] == pytest.approx(0.9)

    def test_multiplicative_monotone(self):
        table = penetrance_table("multiplicative", baseline=0.1, effect=0.8)
        assert table[0, 0, 0] == pytest.approx(0.1)
        assert table[2, 2, 2] == pytest.approx(0.8)
        assert table[1, 0, 0] < table[2, 0, 0] < table[2, 2, 2]

    def test_xor_is_mostly_epistatic(self):
        """The XOR model carries almost no marginal signal: the spread of the
        per-SNP marginals is a small fraction of the joint effect size."""
        table = penetrance_table("xor", baseline=0.2, effect=0.8)
        marginal = table.mean(axis=(1, 2))
        assert marginal.max() - marginal.min() < 0.2 * (0.8 - 0.2)
        assert table.max() - table.min() == pytest.approx(0.6)

    def test_order_2(self):
        assert penetrance_table("threshold", order=2).shape == (3, 3)

    def test_bad_model(self):
        with pytest.raises(ValueError):
            penetrance_table("additive")

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            penetrance_table("threshold", baseline=0.9, effect=0.1)


class TestPlantedInteraction:
    def test_order(self):
        assert PlantedInteraction(snps=(1, 2, 3)).order == 3

    def test_duplicate_snps_rejected(self):
        with pytest.raises(ValueError):
            PlantedInteraction(snps=(1, 1, 2))

    def test_single_snp_rejected(self):
        with pytest.raises(ValueError):
            PlantedInteraction(snps=(1,))

    def test_table(self):
        inter = PlantedInteraction(snps=(0, 1, 2), model="xor", baseline=0.1, effect=0.6)
        assert inter.table().shape == (3, 3, 3)


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_snps=0, n_samples=10)
        with pytest.raises(ValueError):
            SyntheticConfig(n_snps=10, n_samples=10, maf_range=(0.0, 0.5))
        with pytest.raises(ValueError):
            SyntheticConfig(n_snps=10, n_samples=10, case_fraction=1.0)
        with pytest.raises(ValueError):
            SyntheticConfig(
                n_snps=10, n_samples=10, interaction=PlantedInteraction(snps=(5, 20, 7))
            )


class TestGeneration:
    def test_shapes_and_values(self):
        ds = generate_null_dataset(17, 203, seed=9)
        assert ds.n_snps == 17
        assert ds.n_samples == 203
        assert set(np.unique(ds.genotypes)) <= {0, 1, 2}
        assert set(np.unique(ds.phenotypes)) <= {0, 1}

    def test_reproducibility(self):
        a = generate_null_dataset(12, 100, seed=5)
        b = generate_null_dataset(12, 100, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_null_dataset(12, 100, seed=5)
        b = generate_null_dataset(12, 100, seed=6)
        assert a != b

    def test_balanced_phenotype(self):
        ds = generate_dataset(SyntheticConfig(n_snps=8, n_samples=100, seed=1))
        assert ds.n_cases == 50

    def test_case_fraction_respected(self):
        ds = generate_dataset(
            SyntheticConfig(n_snps=8, n_samples=200, case_fraction=0.25, seed=1)
        )
        assert ds.n_cases == 50

    def test_unbalanced_mode_never_degenerate(self):
        ds = generate_dataset(
            SyntheticConfig(
                n_snps=4, n_samples=20, case_fraction=0.5, balance_phenotype=False, seed=0
            )
        )
        assert 0 < ds.n_cases < ds.n_samples

    def test_planted_interaction_enriches_cases(self):
        """Cases must be enriched in high-penetrance genotype combinations."""
        planted = (1, 3, 5)
        ds = generate_dataset(
            SyntheticConfig(
                n_snps=8,
                n_samples=4000,
                interaction=PlantedInteraction(
                    snps=planted, model="threshold", baseline=0.05, effect=0.9
                ),
                seed=11,
            )
        )
        high_risk = np.ones(ds.n_samples, dtype=bool)
        for snp in planted:
            high_risk &= ds.genotypes[snp] >= 1
        case_rate_high = ds.phenotypes[high_risk].mean()
        case_rate_low = ds.phenotypes[~high_risk].mean()
        assert case_rate_high > case_rate_low + 0.2

    def test_maf_range_respected(self):
        ds = generate_null_dataset(50, 2000, seed=3, maf_range=(0.4, 0.5))
        # With MAF >= 0.4 the expected minor-allele count per SNP is >= 0.8 N;
        # a loose lower bound guards against mis-wired MAF sampling.
        minor_counts = (ds.genotypes.astype(int)).sum(axis=1)
        assert (minor_counts > 0.6 * ds.n_samples).all()

    @given(
        n_snps=st.integers(min_value=3, max_value=20),
        n_samples=st.integers(min_value=10, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_generation_always_valid(self, n_snps, n_samples, seed):
        ds = generate_null_dataset(n_snps, n_samples, seed=seed)
        assert ds.n_snps == n_snps
        assert ds.n_samples == n_samples
        assert 0 < ds.n_cases < ds.n_samples or n_samples == 1
