"""Tests of the device catalog (Tables I and II) and derived quantities."""

from __future__ import annotations

import pytest

from repro.devices import (
    ALL_CPUS,
    ALL_GPUS,
    CPU_CATALOG,
    GPU_CATALOG,
    CacheLevel,
    cpu,
    device,
    gpu,
    list_devices,
)


class TestCatalogContents:
    def test_counts_match_paper(self):
        # Table I lists 5 CPUs; Table II lists 9 GPU rows (the paper's prose
        # rounds this to "8 GPUs" / "13 devices").
        assert len(ALL_CPUS) == 5
        assert len(ALL_GPUS) == 9
        assert len(GPU_CATALOG) == 9

    def test_table1_keys(self):
        assert list(CPU_CATALOG) == ["CI1", "CI2", "CI3", "CA1", "CA2"]

    def test_table2_keys(self):
        assert set(GPU_CATALOG) == {
            "GI1", "GI2", "GN1", "GN2", "GN3", "GN4", "GA1", "GA2", "GA3"
        }

    def test_table1_frequencies(self):
        assert cpu("CI1").base_freq_ghz == 3.7
        assert cpu("CI2").base_freq_ghz == 2.3
        assert cpu("CI3").base_freq_ghz == 2.4
        assert cpu("CA1").base_freq_ghz == 2.2
        assert cpu("CA2").base_freq_ghz == 3.0

    def test_table1_vector_widths(self):
        assert cpu("CI1").vector_width_bits == 256
        assert cpu("CI2").vector_width_bits == 512
        assert cpu("CI3").vector_width_bits == 512
        assert cpu("CA1").vector_width_bits == 128
        assert cpu("CA2").vector_width_bits == 256

    def test_only_ice_lake_has_vector_popcnt(self):
        assert cpu("CI3").has_vector_popcnt
        for key in ("CI1", "CI2", "CA1", "CA2"):
            assert not cpu(key).has_vector_popcnt

    def test_table2_popcnt_throughput(self):
        expected = {
            "GI1": 4, "GI2": 4, "GN1": 32, "GN2": 16, "GN3": 16, "GN4": 16,
            "GA1": 12, "GA2": 12, "GA3": 10,
        }
        for key, value in expected.items():
            assert gpu(key).popcnt_per_cu == value

    def test_table2_compute_units_and_stream_cores(self):
        assert (gpu("GN1").compute_units, gpu("GN1").stream_cores) == (30, 3840)
        assert (gpu("GN4").compute_units, gpu("GN4").stream_cores) == (108, 6912)
        assert (gpu("GA2").compute_units, gpu("GA2").stream_cores) == (120, 7680)
        assert (gpu("GI2").compute_units, gpu("GI2").stream_cores) == (96, 768)

    def test_table2_frequencies(self):
        assert gpu("GN3").boost_freq_ghz == pytest.approx(1.770)
        assert gpu("GA3").boost_freq_ghz == pytest.approx(2.250)

    def test_gpu_preferred_parameters(self):
        """<BSched, BS> values reported in §V-C."""
        assert (gpu("GI1").preferred_bsched, gpu("GI1").preferred_bs) == (256, 64)
        assert (gpu("GN1").preferred_bsched, gpu("GN1").preferred_bs) == (256, 32)
        assert (gpu("GA1").preferred_bsched, gpu("GA1").preferred_bs) == (128, 64)
        assert (gpu("GA3").preferred_bsched, gpu("GA3").preferred_bs) == (256, 32)


class TestLookups:
    def test_case_insensitive(self):
        assert cpu("ci3") is CPU_CATALOG["CI3"]
        assert gpu("gn4") is GPU_CATALOG["GN4"]

    def test_device_dispatch(self):
        assert device("CI1").key == "CI1"
        assert device("GA3").key == "GA3"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            cpu("CI9")
        with pytest.raises(KeyError):
            gpu("GX1")
        with pytest.raises(KeyError):
            device("nope")

    def test_list_devices(self):
        assert len(list_devices("cpu")) == 5
        assert len(list_devices("gpu")) == 9
        assert len(list_devices("all")) == 14
        with pytest.raises(ValueError):
            list_devices("fpga")


class TestDerivedQuantities:
    def test_blocking_parameters_match_paper(self):
        """§V-B: <5, 400> on Ice Lake SP, <5, 96> on the remaining CPUs."""
        assert cpu("CI3").blocking_parameters() == (5, 400)
        for key in ("CI1", "CI2", "CA1", "CA2"):
            assert cpu(key).blocking_parameters() == (5, 96)

    def test_blocking_respects_l1_capacity(self):
        for spec in ALL_CPUS:
            bs, bp = spec.blocking_parameters()
            ft_bytes = bs**3 * 4 * 2 * 27
            block_bytes = bs * bp * 4 * 2
            assert ft_bytes + block_bytes <= spec.l1d.size_kib * 1024

    def test_blocking_monotone_in_ft_ways(self):
        spec = cpu("CI3")
        bs_small, _ = spec.blocking_parameters(ft_ways=2)
        bs_large, _ = spec.blocking_parameters(ft_ways=7)
        assert bs_small <= bs_large

    def test_cache_lookup(self):
        assert cpu("CI3").cache("L1").size_kib == 48
        assert cpu("CI3").cache("L1").ways == 12
        with pytest.raises(KeyError):
            cpu("CI1").cache("L4")

    def test_cache_bandwidth(self):
        level = CacheLevel("L1", 32, 8, 64.0)
        assert level.bandwidth_gbps(2.0, cores=4) == pytest.approx(512.0)

    def test_peak_gops(self):
        ci3 = cpu("CI3")
        assert ci3.peak_int_gops() == pytest.approx(16 * 2.0 * 2.4 * 72)
        assert ci3.scalar_peak_int_gops() == pytest.approx(2.0 * 2.4 * 72)

    def test_gpu_peaks(self):
        gn1 = gpu("GN1")
        assert gn1.stream_cores_per_cu == 128
        assert gn1.peak_popcnt_gops() == pytest.approx(32 * 30 * 1.582)

    def test_str_representations(self):
        assert "Ice Lake" in str(cpu("CI3"))
        assert "POPCNT" in str(gpu("GN1"))
