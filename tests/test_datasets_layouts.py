"""Tests of the GPU memory layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.binarization import PhenotypeSplitDataset
from repro.datasets.layouts import snp_major_layout, tiled_layout, transposed_layout


@pytest.fixture(scope="module")
def split(small_dataset_module=None):
    from repro.datasets.synthetic import generate_null_dataset

    return PhenotypeSplitDataset.from_dataset(generate_null_dataset(13, 173, seed=7))


class TestSnpMajorLayout:
    def test_is_identity_arrangement(self, split):
        layout = snp_major_layout(split)
        assert layout.kind == "snp-major"
        assert np.array_equal(layout.control, split.control_planes)
        assert layout.block_size == 1
        assert layout.n_snps == split.n_snps

    def test_plane_accessor(self, split):
        layout = snp_major_layout(split)
        for snp in (0, 5, 12):
            for g in (0, 1):
                assert np.array_equal(layout.plane(0, snp, g), split.control_planes[snp, g])
                assert np.array_equal(layout.plane(1, snp, g), split.case_planes[snp, g])

    def test_stride_is_large(self, split):
        layout = snp_major_layout(split)
        assert layout.address_stride_between_threads() > 1


class TestTransposedLayout:
    def test_shape(self, split):
        layout = transposed_layout(split)
        ctrl_words, case_words = split.words_per_class
        assert layout.control.shape == (ctrl_words, 2, split.n_snps)
        assert layout.case.shape == (case_words, 2, split.n_snps)

    def test_same_words_different_order(self, split):
        layout = transposed_layout(split)
        for snp in range(split.n_snps):
            for g in (0, 1):
                assert np.array_equal(layout.plane(0, snp, g), split.control_planes[snp, g])
                assert np.array_equal(layout.plane(1, snp, g), split.case_planes[snp, g])

    def test_stride_is_one(self, split):
        assert transposed_layout(split).address_stride_between_threads() == 1

    def test_nbytes_preserved(self, split):
        assert transposed_layout(split).nbytes() == snp_major_layout(split).nbytes()


class TestTiledLayout:
    @pytest.mark.parametrize("block_size", [1, 4, 8, 16])
    def test_plane_roundtrip(self, split, block_size):
        layout = tiled_layout(split, block_size=block_size)
        assert layout.kind == "tiled"
        assert layout.block_size == block_size
        for snp in range(split.n_snps):
            for g in (0, 1):
                assert np.array_equal(
                    layout.plane(0, snp, g), split.control_planes[snp, g]
                )

    def test_padding_blocks_are_zero(self, split):
        layout = tiled_layout(split, block_size=8)  # 13 SNPs -> 2 blocks of 8
        n_blocks = layout.control.shape[0]
        assert n_blocks == 2
        padded_slots = n_blocks * 8 - split.n_snps
        assert padded_slots == 3
        # The padded SNP slots of the last block must be all-zero words.
        assert not layout.control[-1, :, :, split.n_snps % 8:].any()

    def test_invalid_block_size(self, split):
        with pytest.raises(ValueError):
            tiled_layout(split, block_size=0)

    def test_genotype2_never_stored(self, split):
        layout = tiled_layout(split, block_size=4)
        with pytest.raises(ValueError):
            layout.plane(0, 0, 2)


class TestGpuLayoutCommon:
    def test_words_and_samples_accessors(self, split):
        layout = transposed_layout(split)
        assert layout.samples(0) == split.n_controls
        assert layout.samples(1) == split.n_cases
        with pytest.raises(ValueError):
            layout.words(2)
