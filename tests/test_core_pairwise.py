"""Tests of the second-order (pairwise) epistasis support."""

from __future__ import annotations

from itertools import combinations as itertools_combinations
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contingency import contingency_oracle
from repro.core.pairwise import (
    PairwiseEpistasisDetector,
    pairwise_combinations,
    pairwise_split_tables,
)
from repro.core.scoring import K2Score
from repro.baselines import BruteForceReference
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.datasets.binarization import PhenotypeSplitDataset


class TestPairwiseCombinations:
    def test_matches_itertools(self):
        expected = np.array(list(itertools_combinations(range(9), 2)))
        assert np.array_equal(pairwise_combinations(9), expected)

    def test_windows(self):
        full = pairwise_combinations(15)
        assert np.array_equal(pairwise_combinations(15, 20, 30), full[20:50])
        assert pairwise_combinations(15, 5, 0).shape == (0, 2)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            pairwise_combinations(6, 0, comb(6, 2) + 1)

    @given(n=st.integers(min_value=2, max_value=40), data=st.data())
    @settings(max_examples=30)
    def test_window_consistency(self, n, data):
        total = comb(n, 2)
        start = data.draw(st.integers(0, total - 1))
        count = data.draw(st.integers(1, min(32, total - start)))
        window = pairwise_combinations(n, start, count)
        assert (window[:, 0] < window[:, 1]).all()
        full = pairwise_combinations(n)
        assert np.array_equal(window, full[start : start + count])

    @given(n=st.integers(min_value=2, max_value=64), data=st.data())
    @settings(max_examples=60)
    def test_vectorized_unranking_matches_itertools(self, n, data):
        """Property pin: the closed-form unranking equals itertools order."""
        expected = np.array(list(itertools_combinations(range(n), 2)), dtype=np.int64)
        total = comb(n, 2)
        start = data.draw(st.integers(0, total))
        count = data.draw(st.integers(0, total - start))
        window = pairwise_combinations(n, start, count)
        assert window.dtype == np.int64
        assert np.array_equal(window, expected[start : start + count])


class TestPairwiseTables:
    def test_matches_oracle(self, small_dataset):
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        pairs = pairwise_combinations(small_dataset.n_snps)[::5]
        tables = pairwise_split_tables(split, pairs)
        assert tables.shape == (pairs.shape[0], 9, 2)
        for i, pair in enumerate(pairs):
            oracle = contingency_oracle(
                small_dataset.genotypes, small_dataset.phenotypes, pair
            )
            assert np.array_equal(tables[i], oracle)

    def test_matches_oracle_odd_samples(self, odd_sample_dataset):
        split = PhenotypeSplitDataset.from_dataset(odd_sample_dataset)
        pairs = pairwise_combinations(odd_sample_dataset.n_snps)
        tables = pairwise_split_tables(split, pairs)
        for i in (0, 17, len(pairs) - 1):
            oracle = contingency_oracle(
                odd_sample_dataset.genotypes, odd_sample_dataset.phenotypes, pairs[i]
            )
            assert np.array_equal(tables[i], oracle)

    def test_validation(self, small_dataset):
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        with pytest.raises(ValueError):
            pairwise_split_tables(split, np.array([[3, 1]]))
        with pytest.raises(ValueError):
            pairwise_split_tables(split, np.array([[0, 1, 2]]))
        with pytest.raises(IndexError):
            pairwise_split_tables(split, np.array([[0, 99]]))


class TestPairwiseDetector:
    def test_agrees_with_brute_force(self, small_dataset):
        fast = PairwiseEpistasisDetector(top_k=5).detect(small_dataset)
        reference = BruteForceReference(order=2, top_k=5).detect(small_dataset)
        assert fast.best_snps == reference.best_snps
        assert fast.best_score == pytest.approx(reference.best_score)
        assert [i.snps for i in fast.top] == [i.snps for i in reference.top]

    def test_recovers_planted_pair(self):
        dataset = generate_dataset(
            SyntheticConfig(
                n_snps=30,
                n_samples=2048,
                interaction=PlantedInteraction(
                    snps=(4, 21), model="threshold", baseline=0.05, effect=0.9
                ),
                seed=13,
            )
        )
        result = PairwiseEpistasisDetector(top_k=3).detect(dataset)
        assert result.contains((4, 21))

    def test_chunking_invariance(self, small_dataset):
        a = PairwiseEpistasisDetector(chunk_size=7).detect(small_dataset)
        b = PairwiseEpistasisDetector(chunk_size=100000).detect(small_dataset)
        assert a.best_snps == b.best_snps
        assert a.best_score == pytest.approx(b.best_score)

    @pytest.mark.parametrize("schedule", ["dynamic", "static", "guided"])
    def test_multi_worker_agreement(self, small_dataset, schedule):
        single = PairwiseEpistasisDetector(top_k=5).detect(small_dataset)
        multi = PairwiseEpistasisDetector(
            top_k=5, n_workers=3, chunk_size=17, schedule=schedule
        ).detect(small_dataset)
        assert [i.snps for i in multi.top] == [i.snps for i in single.top]
        assert multi.best_score == pytest.approx(single.best_score)
        assert multi.stats.extra["schedule"] == schedule
        assert multi.stats.extra["devices"]["cpu"]["workers"] == 3
        assert multi.stats.n_workers == 3

    def test_score_pairs_entry_point(self, small_dataset):
        detector = PairwiseEpistasisDetector()
        pairs = np.array([[0, 1], [2, 5]])
        scores = detector.score_pairs(small_dataset, pairs)
        expected = K2Score().score(
            np.stack(
                [
                    contingency_oracle(small_dataset.genotypes, small_dataset.phenotypes, p)
                    for p in pairs
                ]
            )
        )
        assert np.allclose(scores, expected)

    def test_stats(self, small_dataset):
        result = PairwiseEpistasisDetector().detect(small_dataset)
        assert result.stats.n_combinations == comb(small_dataset.n_snps, 2)
        assert result.stats.extra["order"] == 2
        assert len(result.best_snps) == 2

    def test_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            PairwiseEpistasisDetector(chunk_size=0)
        with pytest.raises(ValueError):
            PairwiseEpistasisDetector(top_k=0)
        with pytest.raises(ValueError):
            PairwiseEpistasisDetector().detect(tiny_dataset.subset_snps([0]))
