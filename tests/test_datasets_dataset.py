"""Tests of the GenotypeDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dataset import GenotypeDataset


def _make(genotypes, phenotypes, names=None):
    return GenotypeDataset(
        genotypes=np.asarray(genotypes, dtype=np.int8),
        phenotypes=np.asarray(phenotypes, dtype=np.int8),
        snp_names=names,
    )


class TestConstruction:
    def test_basic_properties(self):
        ds = _make([[0, 1, 2, 1], [2, 2, 0, 0]], [0, 1, 1, 0])
        assert ds.n_snps == 2
        assert ds.n_samples == 4
        assert ds.n_cases == 2
        assert ds.n_controls == 2
        assert ds.case_indices.tolist() == [1, 2]
        assert ds.control_indices.tolist() == [0, 3]

    def test_default_names(self):
        ds = _make([[0, 1]], [0, 1])
        assert ds.snp_names == ["snp0000"]

    def test_custom_names(self):
        ds = _make([[0], [1]], [1], names=["rs1", "rs2"])
        assert ds.snp_names == ["rs1", "rs2"]

    def test_wrong_name_count(self):
        with pytest.raises(ValueError):
            _make([[0], [1]], [1], names=["rs1"])

    def test_sample_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _make([[0, 1]], [0, 1, 1])

    def test_bad_genotype_rejected(self):
        with pytest.raises(ValueError):
            _make([[0, 3]], [0, 1])

    def test_bad_phenotype_rejected(self):
        with pytest.raises(ValueError):
            _make([[0, 1]], [0, 2])

    def test_1d_genotypes_rejected(self):
        with pytest.raises(ValueError):
            GenotypeDataset(np.zeros(4, dtype=np.int8), np.zeros(4, dtype=np.int8))

    def test_storage_is_contiguous_int8(self, small_dataset):
        assert small_dataset.genotypes.dtype == np.int8
        assert small_dataset.genotypes.flags["C_CONTIGUOUS"]


class TestCombinatorics:
    def test_combination_counts(self, small_dataset):
        assert small_dataset.n_combinations(3) == 2024  # C(24, 3)
        assert small_dataset.n_combinations(2) == 276
        assert small_dataset.n_elements(3) == 2024 * small_dataset.n_samples


class TestManipulation:
    def test_subset_snps(self, small_dataset):
        sub = small_dataset.subset_snps([0, 5, 7])
        assert sub.n_snps == 3
        assert sub.n_samples == small_dataset.n_samples
        assert np.array_equal(sub.genotypes[1], small_dataset.genotypes[5])
        assert sub.snp_names == [small_dataset.snp_names[i] for i in (0, 5, 7)]

    def test_subset_samples(self, small_dataset):
        idx = [0, 2, 4, 6]
        sub = small_dataset.subset_samples(idx)
        assert sub.n_samples == 4
        assert np.array_equal(sub.phenotypes, small_dataset.phenotypes[idx])

    def test_sorted_by_phenotype(self, odd_sample_dataset):
        srt = odd_sample_dataset.sorted_by_phenotype()
        assert srt.n_cases == odd_sample_dataset.n_cases
        phen = srt.phenotypes
        assert (np.diff(phen.astype(int)) >= 0).all()  # controls first, cases last

    def test_genotype_counts(self, small_dataset):
        counts = small_dataset.genotype_counts(0)
        assert counts.sum() == small_dataset.n_samples
        assert counts.shape == (3,)

    def test_equality(self, small_dataset):
        clone = GenotypeDataset(
            genotypes=small_dataset.genotypes.copy(),
            phenotypes=small_dataset.phenotypes.copy(),
            snp_names=list(small_dataset.snp_names),
        )
        assert clone == small_dataset
        other = clone.subset_samples(range(10))
        assert other != small_dataset

    def test_repr(self, small_dataset):
        text = repr(small_dataset)
        assert "n_snps=24" in text
