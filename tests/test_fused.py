"""Fused build+score path tests: knob, bit-identity, charging parity.

The fused path folds each combination's contingency table straight into
the objective without materialising the chunk-wide table array.  These
tests pin its contracts:

* **knob semantics** — ``fused="auto"|"on"|"off"`` on the config/CLI and
  the ``REPRO_FUSED`` environment variable validate with friendly errors
  naming the valid values; ``fused="on"`` rejects ``validate=True``;
* **bit-identity** — fused and unfused runs return *identical* scores and
  top-k for every objective, order 2-4, both word layouts, both kernel
  families, the numpy and numba backends (numba skip-marked), on
  single-device, heterogeneous CARM, staged-pipeline and 2-worker
  distributed plans;
* **charging parity** — §IV op/traffic accounting is modelled, not
  measured: fused and unfused runs charge bit-identical counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import NumbaBackend, get_backend
from repro.core import EpistasisDetector
from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.core.detector import DetectorConfig
from repro.core.fusion import (
    FUSED_ENV,
    VALID_FUSED_MODES,
    check_fused_mode,
    default_fused_mode,
    resolve_fused_mode,
)
from repro.core.scoring import get_objective
from repro.engine.tiling import iter_snp_tiles

HAS_NUMBA = NumbaBackend.is_available()
needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")

OBJECTIVES = ("k2", "gini", "mutual-information", "chi2")


def _top_rows(result):
    return [(inter.snps, inter.score) for inter in result.top]


# ---------------------------------------------------------------------------
# knob semantics
# ---------------------------------------------------------------------------


class TestFusedMode:
    def test_valid_modes(self):
        assert VALID_FUSED_MODES == ("auto", "on", "off")
        assert check_fused_mode(" On ") == "on"
        assert check_fused_mode("AUTO") == "auto"

    def test_unknown_mode_names_valid_values(self):
        with pytest.raises(ValueError, match="valid values.*auto, on, off"):
            check_fused_mode("sideways")

    def test_env_default_parse(self, monkeypatch):
        monkeypatch.delenv(FUSED_ENV, raising=False)
        assert default_fused_mode() == "auto"
        monkeypatch.setenv(FUSED_ENV, "off")
        assert default_fused_mode() == "off"
        monkeypatch.setenv(FUSED_ENV, "bananas")
        with pytest.raises(ValueError, match=f"{FUSED_ENV}.*valid values"):
            default_fused_mode()

    def test_resolve_prefers_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv(FUSED_ENV, "off")
        assert resolve_fused_mode("on") == "on"
        assert resolve_fused_mode(None) == "off"

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="valid values"):
            DetectorConfig(fused="maybe")

    def test_on_rejects_validate(self):
        with pytest.raises(ValueError, match="incompatible with validate"):
            DetectorConfig(fused="on", validate=True)

    def test_env_on_rejects_validate_at_run(self, small_dataset, monkeypatch):
        monkeypatch.setenv(FUSED_ENV, "on")
        detector = EpistasisDetector(order=2, validate=True)
        with pytest.raises(ValueError, match="incompatible with validate"):
            detector.detect(small_dataset)

    def test_auto_with_validate_falls_back(self, small_dataset):
        # validate=True needs materialized tables: auto silently unfuses.
        result = EpistasisDetector(order=2, validate=True).detect(small_dataset)
        base = EpistasisDetector(order=2).detect(small_dataset)
        assert _top_rows(result) == _top_rows(base)

    def test_stats_name_the_mode(self, small_dataset):
        result = EpistasisDetector(order=2, fused="on").detect(small_dataset)
        assert result.stats.extra["fused"] == "on"
        default = EpistasisDetector(order=2).detect(small_dataset)
        assert default.stats.extra["fused"] == "auto"


# ---------------------------------------------------------------------------
# SNP-block tiling
# ---------------------------------------------------------------------------


class TestSnpTiling:
    def test_tiles_cover_combos_in_order(self):
        combos = generate_combinations(12, 3)
        seen = []
        for tile, unique_snps, local in iter_snp_tiles(combos, tile_combos=37):
            assert np.array_equal(np.sort(unique_snps), unique_snps)
            # local indices reconstruct the original tile exactly.
            np.testing.assert_array_equal(unique_snps[local], combos[tile])
            seen.append(combos[tile])
        np.testing.assert_array_equal(np.concatenate(seen), combos)

    def test_gather_reuse_within_tile(self):
        combos = generate_combinations(40, 2)[:64]
        (tile, unique_snps, local), = list(iter_snp_tiles(combos, tile_combos=64))
        # A tile gathers each participating SNP's planes exactly once.
        assert len(unique_snps) == len(set(unique_snps.tolist()))
        assert local.max() == len(unique_snps) - 1


# ---------------------------------------------------------------------------
# bit-identity: fused vs unfused
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("layout", ["u32", "u64"])
@pytest.mark.parametrize("order", [2, 3, 4])
@pytest.mark.parametrize("objective", OBJECTIVES)
class TestNumpyIdentityMatrix:
    def _scores(self, dataset, approach, objective, order, layout, fused):
        detector = EpistasisDetector(
            approach=approach, objective=objective, order=order,
            word_layout=layout, backend="numpy", fused=fused,
        )
        combos = generate_combinations(dataset.n_snps, order)[:200]
        return detector.score_combinations(dataset, combos)

    def test_split_family(self, small_dataset, objective, order, layout):
        on = self._scores(small_dataset, "cpu-v2", objective, order, layout, "on")
        off = self._scores(small_dataset, "cpu-v2", objective, order, layout, "off")
        assert np.array_equal(on, off)

    def test_naive_family(self, small_dataset, objective, order, layout):
        on = self._scores(small_dataset, "cpu-v1", objective, order, layout, "on")
        off = self._scores(small_dataset, "cpu-v1", objective, order, layout, "off")
        assert np.array_equal(on, off)


@needs_numba
@pytest.mark.parametrize("layout", ["u32", "u64"])
@pytest.mark.parametrize("order", [2, 3, 4])
@pytest.mark.parametrize("objective", OBJECTIVES)
class TestNumbaIdentityMatrix:
    """The numba in-kernel fused path must match the numpy reference."""

    def test_split_family(self, small_dataset, objective, order, layout):
        combos = generate_combinations(small_dataset.n_snps, order)[:200]
        ref = EpistasisDetector(
            approach="cpu-v2", objective=objective, order=order,
            word_layout=layout, backend="numpy", fused="off",
        ).score_combinations(small_dataset, combos)
        fused = EpistasisDetector(
            approach="cpu-v2", objective=objective, order=order,
            word_layout=layout, backend="numba", fused="on",
        ).score_combinations(small_dataset, combos)
        assert np.array_equal(fused, ref)

    def test_naive_family(self, small_dataset, objective, order, layout):
        combos = generate_combinations(small_dataset.n_snps, order)[:200]
        ref = EpistasisDetector(
            approach="cpu-v1", objective=objective, order=order,
            word_layout=layout, backend="numpy", fused="off",
        ).score_combinations(small_dataset, combos)
        fused = EpistasisDetector(
            approach="cpu-v1", objective=objective, order=order,
            word_layout=layout, backend="numba", fused="on",
        ).score_combinations(small_dataset, combos)
        assert np.array_equal(fused, ref)


@pytest.mark.parametrize("approach", ["cpu-v1", "cpu-v2", "cpu-v3", "cpu-v4"])
@pytest.mark.parametrize("objective", ["k2", "gini"])
class TestDetectIdentity:
    def test_topk_identical(self, planted_dataset, approach, objective):
        off = EpistasisDetector(
            approach=approach, objective=objective, top_k=5, fused="off"
        ).detect(planted_dataset)
        on = EpistasisDetector(
            approach=approach, objective=objective, top_k=5, fused="on"
        ).detect(planted_dataset)
        assert _top_rows(on) == _top_rows(off)

    def test_charging_parity(self, small_dataset, approach, objective):
        # §IV accounting is modelled, not measured: fusing the execution
        # must charge bit-identical op counters.
        combos = generate_combinations(small_dataset.n_snps, 3)[:64]
        obj = get_objective(objective)
        counts = {}
        for fused in ("off", "on"):
            proto = get_approach(approach, backend="numpy")
            encoded = proto.prepare(small_dataset)
            obj.prepare(small_dataset)
            if fused == "on":
                scores = proto.score_combinations(encoded, combos, obj)
                assert scores is not None
            else:
                proto.build_tables(encoded, combos)
            counts[fused] = dict(proto.counter.ops)
        assert counts["on"] == counts["off"]


class TestPlansIdentity:
    def test_carm_heterogeneous_identity(self, planted_dataset, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        base = EpistasisDetector(order=3, top_k=5, fused="off").detect(planted_dataset)
        het = EpistasisDetector(
            order=3, top_k=5, devices="cpu+gpu", schedule="carm",
            backend="numpy", fused="on",
        ).detect(planted_dataset)
        assert _top_rows(het) == _top_rows(base)

    def test_distributed_identity(self, planted_dataset):
        base = EpistasisDetector(order=3, top_k=5, fused="off").detect(planted_dataset)
        sharded = EpistasisDetector(order=3, top_k=5, fused="on").detect(
            planted_dataset, workers=2
        )
        assert _top_rows(sharded) == _top_rows(base)
        assert sharded.stats.extra["fused"] == "on"

    def test_staged_pipeline_identity(self, planted_dataset):
        kwargs = dict(keep_snps=12, n_permutations=6, permutation_seed=3)
        off = EpistasisDetector(top_k=5, fused="off").detect_staged(
            planted_dataset, **kwargs
        )
        on = EpistasisDetector(top_k=5, fused="on").detect_staged(
            planted_dataset, **kwargs
        )
        assert _top_rows(on) == _top_rows(off)
        assert on.p_values == off.p_values

    def test_score_combinations_uncached_identity(self, small_dataset):
        combos = generate_combinations(small_dataset.n_snps, 3)[:50]
        on = EpistasisDetector(fused="on").score_combinations(
            small_dataset, combos, cache=False
        )
        off = EpistasisDetector(fused="off").score_combinations(
            small_dataset, combos, cache=False
        )
        assert np.array_equal(on, off)


# ---------------------------------------------------------------------------
# backend capability
# ---------------------------------------------------------------------------


class TestBackendCapability:
    def test_default_matches_materialized_scoring(self, small_dataset):
        from repro.datasets.binarization import PhenotypeSplitDataset

        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        combos = generate_combinations(small_dataset.n_snps, 3)[:64]
        backend = get_backend("numpy")
        objective = get_objective("k2")
        objective.prepare(small_dataset)
        args = (
            split.control_planes, split.case_planes,
            split.padding_mask(0), split.padding_mask(1), combos,
        )
        fused = backend.score_combinations(
            "split", combos, objective,
            control_planes=split.control_planes, case_planes=split.case_planes,
            control_mask=split.padding_mask(0), case_mask=split.padding_mask(1),
        )
        assert np.array_equal(fused, objective.score(backend.split_tables(*args)))

    def test_unknown_family_rejected(self):
        backend = get_backend("numpy")
        with pytest.raises(ValueError, match="family"):
            backend.score_combinations(
                "hybrid", np.zeros((1, 2), dtype=np.int64), get_objective("gini")
            )

    def test_fused_spec_advertised_only_when_exact(self, small_dataset):
        k2 = get_objective("k2")
        assert k2.fused_spec() is None  # unprepared: no log-factorial table
        k2.prepare(small_dataset)
        spec = k2.fused_spec()
        assert spec is not None and spec["kind"] == "k2"
        assert get_objective("gini").fused_spec() == {"kind": "gini"}
        # Transcendental objectives never advertise an in-kernel form.
        mi = get_objective("mutual-information")
        mi.prepare(small_dataset)
        assert mi.fused_spec() is None

    @needs_numba
    def test_numba_empty_batch(self, small_dataset):
        from repro.datasets.binarization import PhenotypeSplitDataset

        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        combos = np.empty((0, 3), dtype=np.int64)
        objective = get_objective("gini")
        scores = NumbaBackend().score_combinations(
            "split", combos, objective,
            control_planes=split.control_planes, case_planes=split.case_planes,
            control_mask=split.padding_mask(0), case_mask=split.padding_mask(1),
        )
        assert scores.shape == (0,)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def _save(self, tmp_path, dataset):
        from repro.datasets import save_npz

        path = tmp_path / "ds.npz"
        save_npz(dataset, str(path))
        return str(path)

    def test_detect_fused_flag(self, capsys, tmp_path, small_dataset):
        from repro.cli import main

        path = self._save(tmp_path, small_dataset)
        assert main(
            ["detect", path, "--order", "2", "--fused", "on", "--top-k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fused       : on" in out

    def test_detect_fused_identity(self, capsys, tmp_path, small_dataset):
        from repro.cli import main

        path = self._save(tmp_path, small_dataset)
        outputs = []
        for mode in ("on", "off"):
            assert main(["detect", path, "--order", "2", "--fused", mode]) == 0
            out = capsys.readouterr().out
            outputs.append(
                [
                    line
                    for line in out[: out.index("\nbackend")].splitlines()
                    if not line.startswith(("elapsed", "throughput"))
                ]
            )
        assert outputs[0] == outputs[1]

    def test_malformed_env_is_friendly(self, capsys, tmp_path, small_dataset,
                                       monkeypatch):
        from repro.cli import main

        path = self._save(tmp_path, small_dataset)
        monkeypatch.setenv(FUSED_ENV, "fast-please")
        assert main(["detect", path, "--order", "2"]) == 2
        err = capsys.readouterr().err
        assert FUSED_ENV in err and "valid values: auto, on, off" in err
