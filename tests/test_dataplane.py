"""Tests of the shared-memory data plane and the warm worker fleets.

The acceptance properties of PR 6:

* **segment lifecycle** — publish/attach/reuse/unlink is refcounted
  through :class:`StoreSession`; the last session closing unlinks owned
  segments, double publishes are no-ops, torn (half-written) segments are
  detected and republished;
* **zero re-packs** — a second ``detect()`` on the warm fleet ships no
  pickled arrays and misses the encoding cache exactly zero times;
* **fault tolerance** — a seeded ``shard.run:crash`` fault SIGKILLs a
  worker mid-run: the pool breaks once, the fleet respawns, un-completed
  shards are re-dispatched, and the result is bit-identical to an
  undisturbed run (the full chaos matrix lives in ``test_resilience.py``);
* **bit-identity** — warm-pool runs (including checkpoint/resume slicing
  and the fleet-backed permutation null) match the inline ``workers=1``
  path exactly.

Real OS process spawns are expensive on CI, so multi-process coverage is
concentrated in a few tests sharing the process-wide warm fleet; the
segment-lifecycle tests run entirely in-process.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.detector import DetectorConfig
from repro.core.encoding_cache import ENCODING_CACHE, encoding_cache_key
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.distributed import run_distributed
from repro.distributed.shm import (
    DatasetHandle,
    data_plane_snapshot,
    hydrate_dataset,
    publish_dataset,
    shared_store,
    _key_text,
    _segment_name,
)
from repro.engine import DenseRangeSource
from repro.pipeline import ExpandStage, PermutationStage, ScreenStage, SearchPipeline

PLANTED = (3, 11, 17)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        SyntheticConfig(
            n_snps=20,
            n_samples=256,
            interaction=PlantedInteraction(snps=PLANTED, model="xor", effect=0.9),
            seed=11,
        )
    )


def _delta(before, after=None):
    after = after if after is not None else data_plane_snapshot()
    return {k: v - before.get(k, 0) for k, v in after.items() if v - before.get(k, 0)}


class TestSegmentLifecycle:
    def test_publish_load_roundtrip(self):
        store = shared_store()
        key = ("test-roundtrip", 1)
        arrays = {
            "a": np.arange(12, dtype=np.uint64).reshape(3, 4),
            "b": np.ones(5, dtype=np.int8),
        }
        with store.session() as session:
            store.publish(key, arrays, {"tag": "x"}, session=session)
            loaded, meta = store.load(key, session=session)
            assert meta["tag"] == "x"
            for name, expected in arrays.items():
                np.testing.assert_array_equal(loaded[name], expected)
                assert loaded[name].dtype == expected.dtype
                # Attached views are read-only: workers cannot corrupt the
                # shared pages.
                with pytest.raises(ValueError):
                    loaded[name][0] = 0

    def test_unlink_after_last_session_closes(self):
        store = shared_store()
        key = ("test-unlink", 2)
        name = _segment_name(_key_text(key), store.prefix)
        s1 = store.session()
        s2 = store.session()
        store.publish(key, {"v": np.zeros(4)}, {}, session=s1)
        store.load(key, session=s2)
        s1.close()
        # Still retained by the second session.
        seg = shared_memory.SharedMemory(name=name)
        seg.close()
        s2.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_double_publish_is_noop(self):
        store = shared_store()
        key = ("test-double", 3)
        before = data_plane_snapshot()
        with store.session() as session:
            store.publish(key, {"v": np.arange(8)}, {}, session=session)
            store.publish(key, {"v": np.arange(8)}, {}, session=session)
            delta = _delta(before)
            assert delta.get("segments_published") == 1
            assert delta.get("segments_reused") == 1

    def test_torn_segment_republished(self):
        # A crashed publisher leaves a segment without the trailing magic
        # write; the next publish must detect it, unlink and republish.
        store = shared_store()
        key = ("test-torn", 4)
        name = _segment_name(_key_text(key), store.prefix)
        torn = shared_memory.SharedMemory(name=name, create=True, size=64)
        torn.buf[:8] = b"\x00" * 8  # no magic: torn write
        torn.close()
        before = data_plane_snapshot()
        with store.session() as session:
            store.publish(key, {"v": np.arange(3)}, {"ok": True}, session=session)
            loaded, meta = store.load(key, session=session)
            assert meta["ok"] is True
            np.testing.assert_array_equal(loaded["v"], np.arange(3))
            assert _delta(before).get("segments_stale_republished") == 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_dataset_publish_hydrate_roundtrip(self, dataset):
        store = shared_store()
        with store.session() as session:
            handle = publish_dataset(dataset, session=session)
            assert isinstance(handle, DatasetHandle)
            assert handle.content_digest() == dataset.content_digest()
            hydrated = hydrate_dataset(handle)
            np.testing.assert_array_equal(hydrated.genotypes, dataset.genotypes)
            np.testing.assert_array_equal(hydrated.phenotypes, dataset.phenotypes)
            assert list(hydrated.snp_names) == list(dataset.snp_names)
            assert hydrated.content_digest() == dataset.content_digest()


class TestSharedEncodingTier:
    def test_shared_tier_hit_counts(self, dataset):
        from repro.core.approaches import get_approach

        approach = get_approach("cpu-v4")
        key = encoding_cache_key(dataset, approach)
        assert key is not None
        calls = []

        def loader(k):
            calls.append(k)
            return approach.prepare(dataset)

        ENCODING_CACHE.clear()
        ENCODING_CACHE.attach_shared_tier(loader)
        try:
            before = ENCODING_CACHE.shm_hits
            built = []
            ENCODING_CACHE.get_or_build(key, lambda: built.append(1))
            assert ENCODING_CACHE.shm_hits == before + 1
            assert calls == [key]
            assert not built  # the shared tier supplied it; builder unused
            # Second lookup is a plain local hit, not a shared-tier fetch.
            ENCODING_CACHE.get_or_build(key, lambda: built.append(1))
            assert ENCODING_CACHE.shm_hits == before + 1
            assert calls == [key]
        finally:
            ENCODING_CACHE.detach_shared_tier()
            ENCODING_CACHE.clear()


class TestWarmFleetRuns:
    """Multi-process coverage sharing one warm 2-worker fleet."""

    def _config(self):
        return DetectorConfig(approach="cpu-v4", order=2, top_k=5)

    def test_zero_repacks_on_second_run(self, dataset):
        source = DenseRangeSource(dataset.n_snps, 2)
        config = self._config()
        first = run_distributed(
            dataset, source, config=config, workers=2, pool="keep", shm="on"
        )
        second = run_distributed(
            dataset, source, config=config, workers=2, pool="keep", shm="on"
        )
        assert [ (i.snps, i.score) for i in first.top ] == [
            (i.snps, i.score) for i in second.top
        ]
        # First contact publishes the dataset + encoding and every worker
        # attaches the dataset instead of unpickling it.
        assert first.data_plane.get("dataset_published", 0) == 1
        assert first.data_plane.get("encoding_published", 0) == 1
        assert first.data_plane.get("dataset_shm_attached", 0) >= 1
        assert first.data_plane.get("dataset_pickled", 0) == 0
        assert first.data_plane.get("dataset_unpickled", 0) == 0
        # Warm run: segments reused, worker contexts reused, nothing
        # re-packed, nothing shipped.
        assert second.data_plane.get("segments_reused", 0) >= 1
        assert second.data_plane.get("worker_context_reused", 0) >= 1
        assert second.data_plane.get("encoding_cache_misses", 0) == 0
        assert second.data_plane.get("dataset_pickled", 0) == 0
        assert second.data_plane.get("dataset_unpickled", 0) == 0
        assert second.data_plane.get("worker_context_built", 0) == 0

    def test_warm_pool_matches_inline(self, dataset):
        source = DenseRangeSource(dataset.n_snps, 2)
        config = self._config()
        inline = run_distributed(dataset, source, config=config, workers=1)
        warm = run_distributed(
            dataset, source, config=config, workers=2, pool="keep"
        )
        assert [(i.snps, i.score) for i in inline.top] == [
            (i.snps, i.score) for i in warm.top
        ]

    def test_shard_budget_resume_on_warm_pool(self, dataset, tmp_path):
        source = DenseRangeSource(dataset.n_snps, 2)
        config = self._config()
        ledger = tmp_path / "budget.json"
        partial = run_distributed(
            dataset, source, config=config, workers=2, pool="keep",
            checkpoint=str(ledger), shard_budget=3,
        )
        assert not partial.completed
        assert partial.shards_done == 3
        resumed = run_distributed(
            dataset, source, config=config, workers=2, pool="keep",
            checkpoint=str(ledger), resume=True,
        )
        assert resumed.completed
        assert resumed.shards_restored == 3
        inline = run_distributed(dataset, source, config=config, workers=1)
        assert [(i.snps, i.score) for i in resumed.top] == [
            (i.snps, i.score) for i in inline.top
        ]

    def test_pipeline_permutation_fleet_matches_inline(self, dataset):
        def run(workers):
            pipeline = SearchPipeline(
                [
                    ScreenStage(order=2, keep=10),
                    ExpandStage(order=3),
                    PermutationStage(
                        n_permutations=24, seed=7, checkpoint_every=8
                    ),
                ],
                approach="cpu-v4",
                workers=workers,
            )
            return pipeline.run(dataset)

        inline = run(1)
        fleet = run(2)
        assert [i.snps for i in inline.top] == [i.snps for i in fleet.top]
        assert [i.score for i in inline.top] == [i.score for i in fleet.top]
        assert inline.p_values == fleet.p_values
        assert fleet.stages[-1].extra["null_workers"] == 2

    def test_pipeline_checkpoint_replay_with_warm_pool(self, dataset, tmp_path):
        def pipeline(resume):
            return SearchPipeline(
                [
                    ScreenStage(order=2, keep=10),
                    ExpandStage(order=3),
                    PermutationStage(
                        n_permutations=16, seed=3, checkpoint_every=4
                    ),
                ],
                approach="cpu-v4",
                workers=2,
                checkpoint=str(tmp_path / "ckpt"),
                resume=resume,
            ).run(dataset)

        first = pipeline(False)
        replayed = pipeline(True)
        assert [i.snps for i in first.top] == [i.snps for i in replayed.top]
        assert first.p_values == replayed.p_values
        assert all(s.extra.get("resumed") for s in replayed.stages)

    def test_worker_death_recovers_and_matches(self, dataset, tmp_path):
        # One seeded SIGKILL at the shard.run site: the pool breaks once,
        # the fleet respawns, the victim shard is retried, and the merge is
        # still bit-identical.  The fault plan ships inside the worker
        # payload, so the warm keep-fleet works too — pool="fresh" keeps
        # this test independent of fleet state left by earlier tests.
        source = DenseRangeSource(dataset.n_snps, 2)
        config = self._config()
        outcome = run_distributed(
            dataset, source, config=config, workers=2, pool="fresh",
            faults="shard.run:crash",
        )
        assert outcome.completed
        # The fault fired exactly once (count=1 is the default; a SIGKILLed
        # worker ships no counters, so the evidence is coordinator-side):
        # the pool broke and respawned once, and the victim shard retried.
        assert outcome.resilience["pool_breaks"] == 1
        assert outcome.data_plane.get("pool_respawns", 0) == 1
        assert outcome.resilience["retries"] >= 1
        assert outcome.resilience["ladder"] == "respawned"
        inline = run_distributed(dataset, source, config=config, workers=1)
        assert [(i.snps, i.score) for i in outcome.top] == [
            (i.snps, i.score) for i in inline.top
        ]
