"""Tests of the baselines: brute-force oracle, MPI3SNP re-implementation,
published state-of-the-art figures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BruteForceReference,
    Mpi3snpBaseline,
    REPORTED_RESULTS,
    estimate_mpi3snp_throughput,
    reported_throughput,
)
from repro.baselines.reported import paper_speedup
from repro.core import EpistasisDetector
from repro.devices import cpu, gpu
from tests.conftest import PLANTED_TRIPLET


class TestBruteForceReference:
    def test_agrees_with_detector(self, small_dataset):
        reference = BruteForceReference(top_k=5)
        fast = EpistasisDetector(approach="cpu-v4", top_k=5)
        ref_result = reference.detect(small_dataset)
        fast_result = fast.detect(small_dataset)
        assert ref_result.best_snps == fast_result.best_snps
        assert ref_result.best_score == pytest.approx(fast_result.best_score)
        assert [i.snps for i in ref_result.top] == [i.snps for i in fast_result.top]

    def test_score_single_combination(self, small_dataset):
        reference = BruteForceReference()
        score = reference.score_combination(small_dataset, (0, 1, 2))
        fast = EpistasisDetector(approach="cpu-v2")
        assert score == pytest.approx(
            float(fast.score_combinations(small_dataset, np.array([[0, 1, 2]]))[0])
        )

    def test_supports_second_order(self, tiny_dataset):
        reference = BruteForceReference(order=2)
        result = reference.detect(tiny_dataset)
        assert len(result.best_snps) == 2
        assert result.stats.n_combinations == tiny_dataset.n_combinations(2)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BruteForceReference(order=1)


class TestMpi3snpBaseline:
    def test_agrees_with_best_approach(self, small_dataset):
        baseline = Mpi3snpBaseline(n_ranks=3, chunk_size=512)
        ours = EpistasisDetector(approach="cpu-v4")
        assert baseline.detect(small_dataset).best_snps == ours.detect(small_dataset).best_snps

    def test_recovers_planted_interaction(self, planted_dataset):
        result = Mpi3snpBaseline(n_ranks=2).detect(planted_dataset)
        assert tuple(sorted(result.best_snps)) == PLANTED_TRIPLET or result.contains(
            PLANTED_TRIPLET
        )

    def test_static_partitioning_recorded(self, small_dataset):
        result = Mpi3snpBaseline(n_ranks=4).detect(small_dataset)
        assert result.stats.extra["partitioning"] == "static"
        assert result.stats.extra["ranks"] == 4
        assert result.stats.n_workers == 4

    def test_rank_count_validation(self):
        with pytest.raises(ValueError):
            Mpi3snpBaseline(n_ranks=0)

    def test_single_rank(self, tiny_dataset):
        result = Mpi3snpBaseline(n_ranks=1).detect(tiny_dataset)
        assert result.stats.n_combinations == tiny_dataset.n_combinations(3)

    @pytest.mark.parametrize("order", [2, 4])
    def test_other_orders_agree_with_detector(self, small_dataset, order):
        baseline = Mpi3snpBaseline(n_ranks=3, chunk_size=256, order=order)
        ours = EpistasisDetector(approach="cpu-v2", order=order)
        theirs = baseline.detect(small_dataset)
        assert theirs.best_snps == ours.detect(small_dataset).best_snps
        assert theirs.stats.extra["order"] == order
        assert theirs.stats.n_combinations == small_dataset.n_combinations(order)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            Mpi3snpBaseline(order=1)
        with pytest.raises(ValueError):
            Mpi3snpBaseline(order=6)


class TestMpi3snpThroughputModel:
    def test_cpu_slower_than_this_work(self):
        from repro.perfmodel import estimate_cpu

        for key in ("CI3", "CA2", "CI1"):
            spec = cpu(key)
            baseline = estimate_mpi3snp_throughput(spec, 10000, 1600)
            ours = estimate_cpu(spec, 4, n_snps=10000, n_samples=1600).elements_per_second_total
            assert ours > baseline

    def test_gpu_gap_grows_with_snps(self):
        spec = gpu("GN2")
        small = estimate_mpi3snp_throughput(spec, 10000, 1600)
        large = estimate_mpi3snp_throughput(spec, 40000, 6400)
        from repro.perfmodel import estimate_gpu

        ours_small = estimate_gpu(spec, 4, n_snps=10000, n_samples=1600).elements_per_second_total
        ours_large = estimate_gpu(spec, 4, n_snps=40000, n_samples=6400).elements_per_second_total
        assert ours_large / large > ours_small / small


class TestReportedResults:
    def test_table3_row_count(self):
        assert len(REPORTED_RESULTS) == 15

    def test_lookup(self):
        row = reported_throughput("mpi3snp", "CI3", 10000, 1600)
        assert row is not None
        assert row.speedup == pytest.approx(5.78)
        assert reported_throughput("mpi3snp", "CI3", 123, 456) is None

    def test_paper_speedups(self):
        assert paper_speedup("campos2020", "GI1", 1000, 4000) == pytest.approx(10.56)
        assert paper_speedup("nobre2020", "GA2", 8000, 8000) is None

    def test_baselines_named_consistently(self):
        assert {r.baseline for r in REPORTED_RESULTS} == {
            "mpi3snp", "nobre2020", "campos2020"
        }

    def test_devices_exist_in_catalog(self):
        from repro.devices import device

        for row in REPORTED_RESULTS:
            assert device(row.device) is not None
