"""Execution-backend plane tests: registry, bit-exactness, calibration.

Pins the contracts the backend plane rests on:

* **registry semantics** — name validation and the ``REPRO_BACKEND``
  parse fail with friendly errors naming the valid values; ``auto``
  resolves to numba only when importable; requesting an unavailable
  optional backend warns and degrades to the NumPy reference;
* **bit-exactness** — every backend reproduces the genotype-matrix
  oracle exactly, for both kernel families, both word layouts and
  orders 2-4 (the numba/cupy classes are skip-marked when the optional
  dependency is absent, so the suite passes on a NumPy-only host);
* **calibration** — store round-trips survive a fresh process-like
  reload, and any fingerprint component changing (library version, word
  layout, order, host) invalidates the record;
* **end-to-end identity** — ``detect()`` with an explicit backend
  returns bit-identical top-k to the default on single-device,
  heterogeneous CARM and 2-worker distributed plans, and the CARM
  splitter consumes measured throughput when a record matches.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.backends import (
    BACKENDS,
    VALID_BACKEND_NAMES,
    CalibrationRecord,
    CalibrationStore,
    CupyBackend,
    NumbaBackend,
    calibrate,
    calibration_fingerprint,
    cell_digits,
    check_backend_name,
    default_backend_name,
    get_backend,
    list_backends,
    measured_throughput,
    resolve_backend_name,
    run_probe,
)
from repro.core import EpistasisDetector
from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle_many
from repro.core.detector import DetectorConfig
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset

HAS_NUMBA = NumbaBackend.is_available()
HAS_CUPY = CupyBackend.is_available()

needs_numba = pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
needs_cupy = pytest.mark.skipif(not HAS_CUPY, reason="cupy/CUDA not available")


def _oracle(dataset, combos):
    return contingency_oracle_many(dataset.genotypes, dataset.phenotypes, combos)


def _naive_result(backend, dataset, combos, layout):
    encoded = BinarizedDataset.from_dataset(dataset, layout=layout)
    return backend.naive_tables(encoded.planes, encoded.phenotype_words, combos)


def _split_result(backend, dataset, combos, layout):
    split = PhenotypeSplitDataset.from_dataset(dataset, layout=layout)
    return backend.split_tables(
        split.control_planes,
        split.case_planes,
        split.padding_mask(0),
        split.padding_mask(1),
        combos,
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_valid_names(self):
        assert VALID_BACKEND_NAMES == ("auto", "cupy", "numba", "numpy")
        assert set(BACKENDS) == {"cupy", "numba", "numpy"}

    def test_check_backend_name(self):
        assert check_backend_name("NumPy") == "numpy"
        assert check_backend_name(" auto ") == "auto"
        with pytest.raises(ValueError, match="valid values.*numpy"):
            check_backend_name("cuda")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="valid values"):
            DetectorConfig(backend="tensorrt")

    def test_env_default_parse(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "auto"
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert default_backend_name() == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "warp9")
        with pytest.raises(ValueError, match="REPRO_BACKEND.*valid values"):
            default_backend_name()

    def test_word_width_env_parse(self, monkeypatch):
        from repro.bitops.packing import default_layout

        monkeypatch.setenv("REPRO_WORD_WIDTH", "33")
        with pytest.raises(ValueError, match="REPRO_WORD_WIDTH"):
            default_layout()
        monkeypatch.setenv("REPRO_WORD_WIDTH", "32")
        assert default_layout().name == "u32"

    def test_auto_resolution(self):
        expected = "numba" if HAS_NUMBA else "numpy"
        assert resolve_backend_name("auto") == expected
        assert resolve_backend_name("numpy") == "numpy"

    def test_singletons(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend(get_backend("numpy")) is get_backend("numpy")

    @pytest.mark.skipif(HAS_NUMBA, reason="fallback only fires without numba")
    def test_unavailable_fallback_warns(self):
        with pytest.warns(RuntimeWarning, match="falling back to 'numpy'"):
            backend = get_backend("numba")
        assert backend.name == "numpy"

    def test_list_backends_report(self):
        rows = {row["name"]: row for row in list_backends()}
        assert rows["numpy"]["available"] is True
        assert rows["numpy"]["kind"] == "cpu"
        assert rows["cupy"]["kind"] == "gpu"
        for row in rows.values():
            assert row["detail"]

    def test_cell_digits(self):
        digits = cell_digits(2)
        assert digits.shape == (9, 2)
        assert digits.tolist() == [
            [g0, g1] for g0 in range(3) for g1 in range(3)
        ]
        with pytest.raises(ValueError):
            digits[0, 0] = 5  # read-only: shared across kernels


# ---------------------------------------------------------------------------
# bit-exactness vs the genotype-matrix oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("layout", ["u32", "u64"])
@pytest.mark.parametrize("order", [2, 3, 4])
class TestNumpyOracle:
    def test_naive(self, odd_sample_dataset, order, layout):
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:150]
        tables = _naive_result(get_backend("numpy"), odd_sample_dataset, combos, layout)
        np.testing.assert_array_equal(tables, _oracle(odd_sample_dataset, combos))

    def test_split(self, odd_sample_dataset, order, layout):
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:150]
        tables = _split_result(get_backend("numpy"), odd_sample_dataset, combos, layout)
        np.testing.assert_array_equal(tables, _oracle(odd_sample_dataset, combos))


@needs_numba
@pytest.mark.parametrize("layout", ["u32", "u64"])
@pytest.mark.parametrize("order", [2, 3, 4])
class TestNumbaOracle:
    def test_naive(self, odd_sample_dataset, order, layout):
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:150]
        tables = _naive_result(NumbaBackend(), odd_sample_dataset, combos, layout)
        np.testing.assert_array_equal(tables, _oracle(odd_sample_dataset, combos))

    def test_split(self, odd_sample_dataset, order, layout):
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:150]
        tables = _split_result(NumbaBackend(), odd_sample_dataset, combos, layout)
        np.testing.assert_array_equal(tables, _oracle(odd_sample_dataset, combos))


@needs_numba
def test_numba_empty_batch(odd_sample_dataset):
    combos = np.empty((0, 3), dtype=np.int64)
    tables = _split_result(NumbaBackend(), odd_sample_dataset, combos, "u64")
    assert tables.shape == (0, 27, 2)


@needs_cupy
@pytest.mark.parametrize("layout", ["u32", "u64"])
@pytest.mark.parametrize("order", [2, 3, 4])
class TestCupyOracle:
    def test_naive(self, odd_sample_dataset, order, layout):
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:150]
        tables = _naive_result(CupyBackend(), odd_sample_dataset, combos, layout)
        np.testing.assert_array_equal(tables, _oracle(odd_sample_dataset, combos))

    def test_split(self, odd_sample_dataset, order, layout):
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:150]
        tables = _split_result(CupyBackend(), odd_sample_dataset, combos, layout)
        np.testing.assert_array_equal(tables, _oracle(odd_sample_dataset, combos))


# ---------------------------------------------------------------------------
# calibration store
# ---------------------------------------------------------------------------


def _record(**overrides) -> CalibrationRecord:
    base = dict(
        backend="numpy",
        backend_version="2.0.0",
        family="split",
        order=3,
        layout="u64",
        combos_per_second=1e5,
        elements_per_second=4.096e8,
    )
    base.update(overrides)
    return CalibrationRecord(**base)


class TestCalibrationStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "calib.json"
        store = CalibrationStore(path)
        record = _record()
        store.put(record)
        # A fresh instance re-reads the document from disk.
        reloaded = CalibrationStore(path).get(record.fingerprint)
        assert reloaded is not None
        assert reloaded.combos_per_second == record.combos_per_second
        assert reloaded.fingerprint == record.fingerprint

    def test_fingerprint_invalidation(self, tmp_path):
        store = CalibrationStore(tmp_path / "calib.json")
        store.put(_record())
        hit = store.lookup("numpy", "2.0.0", "split", 3, "u64")
        assert hit is not None
        # Any component changing misses the store.
        assert store.lookup("numpy", "2.1.0", "split", 3, "u64") is None
        assert store.lookup("numpy", "2.0.0", "naive", 3, "u64") is None
        assert store.lookup("numpy", "2.0.0", "split", 4, "u64") is None
        assert store.lookup("numpy", "2.0.0", "split", 3, "u32") is None
        other_host = calibration_fingerprint(
            "numpy", "2.0.0", "split", 3, "u64", host="elsewhere/8c"
        )
        assert store.get(other_host) is None

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        path = tmp_path / "calib.json"
        path.write_text("not json{")
        store = CalibrationStore(path)
        assert len(store) == 0
        store.put(_record())
        assert len(CalibrationStore(path)) == 1

    def test_version_mismatch_discards_document(self, tmp_path):
        path = tmp_path / "calib.json"
        path.write_text(json.dumps({"version": 99, "records": {"x": {}}}))
        assert len(CalibrationStore(path)) == 0

    def test_empty_store_is_not_replaced(self, tmp_path):
        # CalibrationStore defines __len__, so an empty store is falsy;
        # calibrate() must still write into the instance it was handed.
        store = CalibrationStore(tmp_path / "calib.json")
        records = calibrate(backends=["numpy"], orders=(2,), store=store, repeats=1)
        assert len(records) == 1
        assert len(CalibrationStore(tmp_path / "calib.json")) == 1

    def test_run_probe_numpy(self):
        record = run_probe(
            get_backend("numpy"), family="split", order=2,
            n_snps=12, n_samples=256, repeats=1,
        )
        assert record.backend == "numpy"
        assert record.combos_per_second > 0
        assert record.elements_per_second == pytest.approx(
            record.combos_per_second * 256
        )
        assert record.probe_seconds > 0

    @pytest.mark.parametrize("family", ["split", "naive"])
    def test_run_probe_fused(self, family):
        # Fused probes time score_combinations() and key the record
        # under "<family>+fused" so store fingerprints never collide
        # with the unfused measurement.
        record = run_probe(
            get_backend("numpy"), family=family, order=2,
            n_snps=12, n_samples=256, repeats=1, fused=True,
        )
        assert record.family == f"{family}+fused"
        assert record.combos_per_second > 0
        assert record.fingerprint != run_probe(
            get_backend("numpy"), family=family, order=2,
            n_snps=12, n_samples=256, repeats=1,
        ).fingerprint

    def test_measured_throughput_lookup(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        assert measured_throughput("cpu", "numpy") is None
        version = BACKENDS["numpy"].version() or "unknown"
        from repro.bitops.packing import get_layout

        CalibrationStore().put(
            _record(backend_version=version, layout=get_layout(None).name)
        )
        assert measured_throughput("cpu", "numpy") == pytest.approx(4.096e8)
        # GPU lanes look up the cupy record (gpusim is modelled, never
        # measured) — absent here.
        assert measured_throughput("gpu") is None


# ---------------------------------------------------------------------------
# CARM measured mode
# ---------------------------------------------------------------------------


class TestCarmMeasured:
    def _store_cpu_record(self, tmp_path, monkeypatch, elements=1e12):
        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        from repro.bitops.packing import get_layout

        version = BACKENDS["numpy"].version() or "unknown"
        CalibrationStore().put(
            _record(
                backend_version=version,
                layout=get_layout(None).name,
                elements_per_second=elements,
            )
        )

    def test_calibrated_device_throughput_sources(self, tmp_path, monkeypatch):
        from repro.devices.catalog import device
        from repro.perfmodel.efficiency import calibrated_device_throughput

        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        value, source = calibrated_device_throughput(device("CI3"), backend="numpy")
        assert source == "model" and value > 0
        self._store_cpu_record(tmp_path, monkeypatch)
        value, source = calibrated_device_throughput(device("CI3"), backend="numpy")
        assert source == "measured" and value == pytest.approx(1e12)

    def test_weight_sources_per_lane(self, tmp_path, monkeypatch):
        from repro.engine import parse_devices
        from repro.engine.policies import CarmRatioPolicy

        self._store_cpu_record(tmp_path, monkeypatch)
        devices = parse_devices("cpu+gpu")
        policy = CarmRatioPolicy()
        policy.configure(n_snps=64, n_samples=4096, order=3)
        policy.configure_execution(backend="numpy", word_layout=None)
        policy.shares(1000, devices)
        assert policy.weight_sources == ["measured", "model"]
        # The huge measured CPU record dominates the modelled GPU lane.
        shares = policy.shares(1000, devices)
        assert shares[0] > shares[1]

    def test_use_measured_false_ignores_store(self, tmp_path, monkeypatch):
        from repro.engine import parse_devices
        from repro.engine.policies import CarmRatioPolicy

        self._store_cpu_record(tmp_path, monkeypatch)
        policy = CarmRatioPolicy(use_measured=False)
        policy.configure_execution(backend="numpy")
        policy.shares(1000, parse_devices("cpu+gpu"))
        assert policy.weight_sources == ["model", "model"]

    def test_explicit_ratios_still_win(self, tmp_path, monkeypatch):
        from repro.engine import parse_devices
        from repro.engine.policies import CarmRatioPolicy

        self._store_cpu_record(tmp_path, monkeypatch)
        policy = CarmRatioPolicy(ratios=[1, 3])
        assert policy.shares(1000, parse_devices("cpu+gpu")) == [250, 750]
        assert policy.weight_sources == ["ratio", "ratio"]


# ---------------------------------------------------------------------------
# end-to-end identity through detect()
# ---------------------------------------------------------------------------


def _top_rows(result):
    return [(inter.snps, inter.score) for inter in result.top]


class TestDetectorBackend:
    def test_stats_name_the_backend(self, small_dataset):
        result = EpistasisDetector(order=2, backend="numpy").detect(small_dataset)
        assert result.stats.extra["backend"] == "numpy"

    def test_explicit_numpy_matches_default(self, planted_dataset):
        base = EpistasisDetector(order=3, top_k=5).detect(planted_dataset)
        explicit = EpistasisDetector(order=3, top_k=5, backend="numpy").detect(
            planted_dataset
        )
        assert _top_rows(explicit) == _top_rows(base)

    @pytest.mark.parametrize("approach", ["cpu-v1", "cpu-v3"])
    def test_backend_routes_every_family(self, small_dataset, approach):
        base = EpistasisDetector(approach=approach, order=3, top_k=5).detect(
            small_dataset
        )
        explicit = EpistasisDetector(
            approach=approach, order=3, top_k=5, backend="numpy"
        ).detect(small_dataset)
        assert _top_rows(explicit) == _top_rows(base)

    def test_carm_heterogeneous_identity(self, planted_dataset, tmp_path, monkeypatch):
        # Point the CARM lookup at an empty store so only the word-level
        # identity (not the split sizing) is under test here.
        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        base = EpistasisDetector(order=3, top_k=5).detect(planted_dataset)
        het = EpistasisDetector(
            order=3, top_k=5, devices="cpu+gpu", schedule="carm", backend="numpy"
        ).detect(planted_dataset)
        assert _top_rows(het) == _top_rows(base)
        devices = het.stats.extra["devices"]
        assert devices["cpu"]["backend"] == "numpy"
        assert devices["gpu"]["backend"] == "gpusim"

    def test_distributed_identity(self, planted_dataset):
        base = EpistasisDetector(order=3, top_k=5, backend="numpy").detect(
            planted_dataset
        )
        sharded = EpistasisDetector(order=3, top_k=5, backend="numpy").detect(
            planted_dataset, workers=2
        )
        assert _top_rows(sharded) == _top_rows(base)

    @needs_numba
    def test_numba_detect_identity(self, planted_dataset):
        base = EpistasisDetector(order=3, top_k=5, backend="numpy").detect(
            planted_dataset
        )
        jitted = EpistasisDetector(order=3, top_k=5, backend="numba").detect(
            planted_dataset
        )
        assert _top_rows(jitted) == _top_rows(base)
        assert jitted.stats.extra["backend"] == "numba"

    @needs_numba
    def test_numba_charges_match_numpy(self, small_dataset):
        # §IV accounting is modelled, backend-independent: identical op
        # counts whichever backend executed the words.
        from repro.core.approaches import get_approach

        combos = generate_combinations(small_dataset.n_snps, 3)[:64]
        counts = {}
        for name in ("numpy", "numba"):
            approach = get_approach("cpu-v2", backend=name)
            approach.build_tables(approach.prepare(small_dataset), combos)
            counts[name] = dict(approach.counter.ops)
        assert counts["numpy"] == counts["numba"]

    def test_gpu_approaches_keep_gpusim(self, small_dataset):
        result = EpistasisDetector(
            approach="gpu-v4", order=2, backend="numpy"
        ).detect(small_dataset)
        assert result.stats.extra["backend"] == "gpusim"

    def test_env_backend_reaches_detector(self, small_dataset, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        result = EpistasisDetector(order=2).detect(small_dataset)
        assert result.stats.extra["backend"] == "numpy"


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_backends_report(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and "available" in out
        assert "default" in out

    def test_backends_json_calibrate(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CALIBRATION_PATH", str(tmp_path / "calib.json"))
        assert main(["backends", "--calibrate", "--repeats", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rows = {row["name"]: row for row in doc["backends"]}
        assert rows["numpy"]["calibrated_combos_per_second"] > 0
        assert doc["default"] in ("numba", "numpy")

    def test_detect_backend_flag(self, capsys, tmp_path, small_dataset):
        from repro.cli import main
        from repro.datasets import save_npz

        path = tmp_path / "ds.npz"
        save_npz(small_dataset, str(path))
        assert main(
            ["detect", str(path), "--order", "2", "--backend", "numpy", "--top-k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend     : numpy" in out
