"""Tests of contingency-table construction and validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contingency import (
    N_GENOTYPE_COMBINATIONS,
    cell_index_to_genotypes,
    combination_cell_index,
    contingency_oracle,
    contingency_oracle_many,
    table_totals,
    validate_tables,
)
from repro.datasets.synthetic import generate_null_dataset


class TestCellIndex:
    def test_corner_cases(self):
        assert combination_cell_index((0, 0, 0)) == 0
        assert combination_cell_index((2, 2, 2)) == 26
        assert combination_cell_index((0, 1, 2)) == 5
        assert combination_cell_index((1, 0, 0)) == 9

    def test_matches_figure1_convention(self):
        """Figure 1 numbers the (0,1,2) cell as 5 with X most significant."""
        assert combination_cell_index((0, 1, 2)) == 0 * 9 + 1 * 3 + 2

    def test_invalid_genotype(self):
        with pytest.raises(ValueError):
            combination_cell_index((0, 3, 1))

    @given(st.tuples(*[st.integers(0, 2)] * 3))
    def test_roundtrip(self, genotypes):
        idx = combination_cell_index(genotypes)
        assert 0 <= idx < N_GENOTYPE_COMBINATIONS
        assert cell_index_to_genotypes(idx) == genotypes

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            cell_index_to_genotypes(27)


class TestOracle:
    def test_manual_example(self):
        genotypes = np.array(
            [
                [0, 0, 1, 2],
                [1, 1, 1, 0],
                [2, 0, 2, 2],
            ],
            dtype=np.int8,
        )
        phenotypes = np.array([0, 1, 1, 0], dtype=np.int8)
        table = contingency_oracle(genotypes, phenotypes, (0, 1, 2))
        assert table.shape == (27, 2)
        assert table.sum() == 4
        # sample0: (0,1,2) control -> cell 5 column 0
        assert table[combination_cell_index((0, 1, 2)), 0] == 1
        # sample1: (0,1,0) case -> cell 3 column 1
        assert table[combination_cell_index((0, 1, 0)), 1] == 1
        # sample2: (1,1,2) case
        assert table[combination_cell_index((1, 1, 2)), 1] == 1
        # sample3: (2,0,2) control
        assert table[combination_cell_index((2, 0, 2)), 0] == 1

    def test_column_sums(self, small_dataset):
        table = contingency_oracle(small_dataset.genotypes, small_dataset.phenotypes, (1, 5, 9))
        assert table[:, 0].sum() == small_dataset.n_controls
        assert table[:, 1].sum() == small_dataset.n_cases

    def test_order_2(self, small_dataset):
        table = contingency_oracle(small_dataset.genotypes, small_dataset.phenotypes, (0, 1))
        assert table.shape == (9, 2)
        assert table.sum() == small_dataset.n_samples

    def test_many_matches_single(self, small_dataset):
        combos = np.array([[0, 1, 2], [3, 10, 20], [5, 6, 7]])
        many = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos
        )
        assert many.shape == (3, 27, 2)
        for i, combo in enumerate(combos):
            single = contingency_oracle(
                small_dataset.genotypes, small_dataset.phenotypes, combo
            )
            assert np.array_equal(many[i], single)

    def test_many_requires_2d(self, small_dataset):
        with pytest.raises(ValueError):
            contingency_oracle_many(
                small_dataset.genotypes, small_dataset.phenotypes, np.array([0, 1, 2])
            )

    @given(
        n_samples=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_random(self, n_samples, seed):
        ds = generate_null_dataset(6, n_samples, seed=seed)
        table = contingency_oracle(ds.genotypes, ds.phenotypes, (0, 2, 4))
        assert table.sum() == n_samples
        assert (table >= 0).all()
        assert table[:, 1].sum() == ds.n_cases


class TestValidation:
    def test_totals(self, small_dataset):
        combos = np.array([[0, 1, 2], [1, 2, 3]])
        tables = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos
        )
        assert np.array_equal(
            table_totals(tables), np.full(2, small_dataset.n_samples)
        )
        validate_tables(tables, small_dataset.n_controls, small_dataset.n_cases)

    def test_negative_counts_detected(self):
        bad = np.zeros((1, 27, 2), dtype=np.int64)
        bad[0, 0, 0] = -1
        with pytest.raises(ValueError):
            validate_tables(bad)

    def test_wrong_shape_detected(self):
        with pytest.raises(ValueError):
            validate_tables(np.zeros((27, 3)))

    def test_column_sum_mismatch_detected(self, small_dataset):
        combos = np.array([[0, 1, 2]])
        tables = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos
        )
        with pytest.raises(ValueError):
            validate_tables(tables, small_dataset.n_controls + 1, small_dataset.n_cases)
