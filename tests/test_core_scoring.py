"""Tests of the objective functions (K2 score and extensions)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.contingency import contingency_oracle
from repro.core.scoring import (
    OBJECTIVES,
    ChiSquaredScore,
    GiniScore,
    K2Score,
    MutualInformationScore,
    get_objective,
)


def k2_reference(table: np.ndarray) -> float:
    """Literal transcription of Equation 1 (log-sum form) for small tables."""
    total = 0.0
    for row in table:
        r_i = int(row.sum())
        first = sum(math.log(b) for b in range(1, r_i + 2))
        second = sum(
            math.log(d) for r_ij in row for d in range(1, int(r_ij) + 1)
        )
        total += first - second
    return total


class TestK2Score:
    def test_matches_equation1_literal(self, rng):
        tables = rng.integers(0, 50, size=(8, 27, 2))
        scores = K2Score().score(tables)
        for i in range(8):
            assert scores[i] == pytest.approx(k2_reference(tables[i]), rel=1e-12)

    def test_empty_table_scores_zero_contribution(self):
        table = np.zeros((1, 27, 2))
        # Every row contributes gammaln(2) = log(1!) = 0.
        assert K2Score().score(table)[0] == pytest.approx(0.0)

    def test_perfect_separation_scores_lower(self):
        """A table that splits cases/controls perfectly beats a mixed one."""
        separated = np.zeros((27, 2))
        separated[0] = [40, 0]
        separated[1] = [0, 40]
        mixed = np.zeros((27, 2))
        mixed[0] = [20, 20]
        mixed[1] = [20, 20]
        k2 = K2Score()
        assert k2.score(separated[None])[0] < k2.score(mixed[None])[0]

    def test_batch_shapes(self, rng):
        tables = rng.integers(0, 10, size=(4, 5, 27, 2))
        assert K2Score().score(tables).shape == (4, 5)

    @pytest.mark.parametrize("n_cells", [9, 27, 81, 243])
    def test_any_cell_count(self, rng, n_cells):
        """Objectives consume flat (..., 3^k, 2) tables for every order k."""
        tables = rng.integers(0, 10, size=(6, n_cells, 2))
        for objective in (K2Score(), MutualInformationScore(), GiniScore(), ChiSquaredScore()):
            scores = objective.score(tables)
            assert scores.shape == (6,)
            assert np.isfinite(scores).all()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            K2Score().score(np.full((1, 27, 2), -1.0))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            K2Score().score(np.zeros((27, 3)))

    def test_planted_interaction_scores_best(self, planted_dataset):
        """On the planted dataset the true triplet beats random triplets."""
        from tests.conftest import PLANTED_TRIPLET

        k2 = K2Score()
        true_table = contingency_oracle(
            planted_dataset.genotypes, planted_dataset.phenotypes, PLANTED_TRIPLET
        )
        true_score = k2.score(true_table[None])[0]
        rng = np.random.default_rng(0)
        worse = 0
        for _ in range(30):
            combo = tuple(sorted(rng.choice(planted_dataset.n_snps, 3, replace=False)))
            if combo == PLANTED_TRIPLET:
                continue
            table = contingency_oracle(
                planted_dataset.genotypes, planted_dataset.phenotypes, combo
            )
            if k2.score(table[None])[0] > true_score:
                worse += 1
        assert worse >= 28  # essentially all random triplets score worse

    @given(
        hnp.arrays(
            np.int64,
            (27, 2),
            elements=st.integers(min_value=0, max_value=1000),
        )
    )
    @settings(max_examples=50)
    def test_always_finite(self, table):
        score = K2Score().score(table[None])[0]
        assert np.isfinite(score)


class TestOtherObjectives:
    @pytest.fixture()
    def strong_and_weak(self, planted_dataset):
        from tests.conftest import PLANTED_TRIPLET

        strong = contingency_oracle(
            planted_dataset.genotypes, planted_dataset.phenotypes, PLANTED_TRIPLET
        )
        weak = contingency_oracle(
            planted_dataset.genotypes, planted_dataset.phenotypes, (0, 1, 2)
        )
        return strong[None], weak[None]

    @pytest.mark.parametrize("name", ["mutual-information", "gini", "chi2"])
    def test_lower_is_better_convention(self, name, strong_and_weak):
        strong, weak = strong_and_weak
        objective = get_objective(name)
        assert objective.score(strong)[0] < objective.score(weak)[0]

    def test_mutual_information_zero_for_independent(self):
        table = np.full((27, 2), 10.0)
        assert MutualInformationScore().score(table[None])[0] == pytest.approx(0.0, abs=1e-9)

    def test_gini_bounds(self, rng):
        tables = rng.integers(0, 100, size=(16, 27, 2))
        scores = GiniScore().score(tables)
        assert ((scores >= 0) & (scores <= 0.5 + 1e-12)).all()

    def test_chi2_zero_for_independent(self):
        table = np.full((27, 2), 7.0)
        assert ChiSquaredScore().score(table[None])[0] == pytest.approx(0.0, abs=1e-9)

    def test_all_objectives_handle_empty_cells(self, rng):
        tables = rng.integers(0, 3, size=(10, 27, 2))  # many zero cells
        for cls in OBJECTIVES.values():
            scores = cls().score(tables)
            assert np.isfinite(scores).all()


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_objective("k2"), K2Score)
        assert isinstance(get_objective("K2"), K2Score)
        assert isinstance(get_objective("gini"), GiniScore)

    def test_passthrough_instance(self):
        inst = K2Score()
        assert get_objective(inst) is inst

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_objective("bic")

    def test_callable_protocol(self, rng):
        tables = rng.integers(0, 5, size=(3, 27, 2))
        k2 = K2Score()
        assert np.array_equal(k2(tables), k2.score(tables))
