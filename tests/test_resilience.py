"""Chaos suite for the fault-tolerance layer.

The acceptance properties of the resilience PR:

* **bit-identity under faults** — every seeded single-fault schedule
  (worker crash, hard exit, injected error, torn shared-memory write,
  slow shard) completes a 2-worker ``run_distributed`` with a merged
  top-k bit-identical to the fault-free run;
* **poison-shard quarantine** — a shard that crashes its worker on every
  attempt exhausts the retry budget, is quarantined, and finishes
  *inline in the coordinator* (the degradation ladder's last rung) —
  still bit-identically;
* **heartbeat watchdog** — a hung worker is detected via the
  shard-completion heartbeat, killed, and its shards re-dispatched;
* **determinism of the plumbing** — fault plans parse from the compact
  grammar / JSON / ``@file`` and schedule reproducibly by seed; retry
  backoff is a pure function of the attempt count; process-killing kinds
  never fire in the coordinator;
* **orphan reaping** — torn or dead-owner ``/dev/shm`` segments are
  reclaimed, live segments never are;
* **cross-resume budgets** — retry/quarantine history persists in the
  checkpoint ledger and re-seeds the next run's attempt counts;
* **friendly resume refusals** — a fingerprint mismatch names the
  diverged component instead of dumping two hashes.

Multi-process chaos tests spawn fresh pools (the fault plan must reach
pristine workers), so they are the slowest tests in the tree; the unit
coverage of the policy/plan machinery runs entirely in-process.
"""

from __future__ import annotations

import json
import shutil
import uuid
from multiprocessing import shared_memory

import pytest

from repro.core.detector import DetectorConfig
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.distributed import run_distributed
from repro.distributed.checkpoint import JsonLedger, fingerprint_divergence
from repro.distributed.resilience import (
    LADDER_RUNGS,
    ResilienceLog,
    RetryPolicy,
    merge_history,
)
from repro.distributed.shm import (
    data_plane_snapshot,
    reap_orphans,
    scan_segments,
    shared_store,
)
from repro.engine import DenseRangeSource
from repro.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FAULTS_ENV,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fire,
    install_plan,
    resolve_fault_plan,
)

PLANTED = (3, 11, 17)

#: Fast pacing for chaos tests — backoff is pure pacing, never results.
FAST = RetryPolicy(backoff_seconds=0.01)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        SyntheticConfig(
            n_snps=20,
            n_samples=256,
            interaction=PlantedInteraction(snps=PLANTED, model="xor", effect=0.9),
            seed=11,
        )
    )


def _config():
    return DetectorConfig(approach="cpu-v4", order=2, top_k=5)


def _rows(outcome):
    return [(i.snps, i.score) for i in outcome.top]


@pytest.fixture(scope="module")
def baseline(dataset):
    """The fault-free reference merge (inline, no pools, no faults)."""
    source = DenseRangeSource(dataset.n_snps, 2)
    return _rows(run_distributed(dataset, source, config=_config(), workers=1))


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    install_plan(None)
    yield
    install_plan(None)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_factor=2.0, max_backoff_seconds=0.5
        )
        assert policy.backoff(0) == 0.0
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.5)  # capped
        assert policy.backoff(40) == pytest.approx(0.5)

    def test_backoff_is_deterministic(self):
        # The same failure count always maps to the same delay: pacing is
        # a pure function of the attempt history, never of wall-clock.
        policy = RetryPolicy()
        assert [policy.backoff(n) for n in range(6)] == [
            policy.backoff(n) for n in range(6)
        ]

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_wait_timeout_implements_watchdog_poll(self):
        assert RetryPolicy().wait_timeout() is None
        policy = RetryPolicy(shard_deadline_seconds=10.0, poll_seconds=0.25)
        assert policy.wait_timeout() == 0.25
        tight = RetryPolicy(shard_deadline_seconds=0.1, poll_seconds=0.25)
        assert tight.wait_timeout() == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(shard_deadline_seconds=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_pool_breaks=0)


# ---------------------------------------------------------------------------
# FaultSpec / FaultPlan
# ---------------------------------------------------------------------------
class TestFaultPlanParsing:
    def test_compact_spec(self):
        spec = FaultSpec.parse("shard.run:crash")
        assert spec.site == "shard.run"
        assert spec.kind == "crash"
        assert spec.shard is None
        assert spec.count == 1

    def test_compact_options(self):
        spec = FaultSpec.parse("shard.run:hang:shard=3:count=2:delay=0.5")
        assert (spec.shard, spec.count, spec.delay_seconds) == (3, 2, 0.5)

    def test_broken_pool_alias(self):
        assert FaultSpec.parse("shard.claim:broken-pool").kind == "exit"

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("nowhere:crash")
        with pytest.raises(ValueError):
            FaultSpec.parse("shard.run:melt")
        with pytest.raises(ValueError):
            FaultSpec.parse("shard.run:crash:volume=11")
        with pytest.raises(ValueError):
            FaultSpec.parse("shard.run")
        # Torn writes only exist at the publish site.
        with pytest.raises(ValueError):
            FaultSpec.parse("shard.run:torn")

    def test_plan_from_compact_list(self):
        plan = FaultPlan.parse("shard.run:crash, shm.publish:torn")
        assert [s.kind for s in plan.specs] == ["crash", "torn"]

    def test_plan_from_json_and_file(self, tmp_path):
        doc = [{"site": "shard.run", "kind": "slow", "delay_seconds": 0.1}]
        plan = FaultPlan.parse(json.dumps(doc))
        assert plan.specs[0].delay_seconds == 0.1
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        assert FaultPlan.parse(f"@{path}") == plan

    def test_roundtrip(self):
        plan = FaultPlan.parse("shard.run:crash:shard=3:count=2")
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_schedule_is_a_pure_function_of_the_seed(self):
        first = FaultPlan.schedule(seed=7, n_faults=4)
        again = FaultPlan.schedule(seed=7, n_faults=4)
        assert first.specs == again.specs
        assert first.seed == 7
        for spec in first.specs:
            assert spec.site in FAULT_SITES
            assert spec.kind in FAULT_KINDS

    def test_resolve(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert resolve_fault_plan(None) is None
        monkeypatch.setenv(FAULTS_ENV, "shard.run:crash")
        env_plan = resolve_fault_plan(None)
        assert env_plan is not None and env_plan.specs[0].kind == "crash"
        assert resolve_fault_plan("shm.publish:torn").specs[0].kind == "torn"
        plan = FaultPlan.parse("shard.run:slow")
        assert resolve_fault_plan(plan) is plan
        with pytest.raises(TypeError):
            resolve_fault_plan(42)


class TestFire:
    def test_worker_only_kinds_never_fire_in_the_coordinator(self):
        # crash / exit / error would take down (or fail) this very test
        # process; the coordinator-side fire() must skip them so the
        # quarantine/inline path is immune by construction.
        for kind in ("crash", "exit", "error"):
            install_plan(FaultPlan.parse(f"shard.run:{kind}"))
            fire("shard.run", shard=0)  # must be a no-op

    def test_parent_safe_kind_fires_and_respects_count(self):
        install_plan(FaultPlan.parse("shard.run:slow:delay=0:count=2"))
        before = data_plane_snapshot()
        for _ in range(5):
            fire("shard.run", shard=0)
        after = data_plane_snapshot()
        assert (
            after.get("faults_injected_slow", 0)
            - before.get("faults_injected_slow", 0)
        ) == 2

    def test_shard_targeting(self):
        install_plan(FaultPlan.parse("shard.run:slow:delay=0:shard=3"))
        before = data_plane_snapshot()
        fire("shard.run", shard=1)
        fire("shard.run", shard=None)
        after = data_plane_snapshot()
        assert after.get("faults_injected_slow", 0) == before.get(
            "faults_injected_slow", 0
        )
        fire("shard.run", shard=3)
        assert data_plane_snapshot().get("faults_injected_slow", 0) == (
            before.get("faults_injected_slow", 0) + 1
        )

    def test_armed_plan_claims_cross_process_budget(self):
        plan = FaultPlan.parse("shard.run:slow:delay=0:count=2").arm()
        try:
            assert plan.claim_dir is not None
            install_plan(plan)
            for _ in range(5):
                fire("shard.run", shard=0)
            # Exactly count slots were claimed, as files — a second
            # process sharing the plan would see the same budget.
            assert plan.fired() == 2
        finally:
            install_plan(None)
            shutil.rmtree(plan.claim_dir, ignore_errors=True)

    def test_error_kind_raises_in_workers(self):
        # Simulate the worker side directly: the error kind raises
        # FaultInjected from _execute (fire() gates it on being in a
        # worker process, exercised end-to-end by the chaos matrix).
        from repro.faults import _execute

        with pytest.raises(FaultInjected):
            _execute(FaultSpec(site="shard.run", kind="error"), None)


# ---------------------------------------------------------------------------
# ResilienceLog / cross-resume history
# ---------------------------------------------------------------------------
class TestResilienceLog:
    def test_record_failure_counts(self):
        log = ResilienceLog()
        assert log.record_failure(4) == 1
        assert log.record_failure(4) == 2
        assert log.record_failure(7) == 1
        assert log.attempts == {4: 2, 7: 1}

    def test_quarantine_dedups(self):
        log = ResilienceLog()
        log.record_quarantine(3)
        log.record_quarantine(3)
        assert log.quarantined == [3]

    def test_faulted(self):
        assert not ResilienceLog().faulted
        log = ResilienceLog()
        log.retries = 1
        assert log.faulted

    def test_history_roundtrip(self):
        log = ResilienceLog()
        log.record_failure(4)
        log.record_failure(4)
        log.record_quarantine(4)
        log.retries = 1
        history = merge_history(None, "run-a", log)
        reloaded = ResilienceLog.from_history(history)
        assert reloaded.attempts == {4: 2}
        assert reloaded.quarantined == [4]
        assert history["runs"][0]["run_id"] == "run-a"

    def test_merge_history_accumulates(self):
        first = ResilienceLog()
        first.record_failure(4)
        first.retries = 1
        history = merge_history(None, "run-a", first)
        second = ResilienceLog.from_history(history)
        second.record_failure(4)  # 2 total
        second.record_failure(9)
        second.record_quarantine(9)
        history = merge_history(history, "run-b", second)
        assert history["attempts"] == {"4": 2, "9": 1}
        assert history["quarantined"] == [9]
        assert [r["run_id"] for r in history["runs"]] == ["run-a", "run-b"]

    def test_clean_runs_leave_no_history_entry(self):
        history = merge_history(None, "run-a", ResilienceLog())
        assert history["runs"] == []

    def test_ladder_rungs(self):
        assert LADDER_RUNGS == ("warm", "respawned", "fresh", "inline")
        assert ResilienceLog().ladder == "warm"


# ---------------------------------------------------------------------------
# Friendly fingerprint-mismatch refusals
# ---------------------------------------------------------------------------
class TestFingerprintDivergence:
    def test_names_the_diverged_component(self):
        expected = {"dataset": {"sha1": "aaa", "n_snps": 20}, "source": "x"}
        found = {"dataset": {"sha1": "bbb", "n_snps": 20}, "source": "x"}
        lines = fingerprint_divergence(expected, found)
        assert len(lines) == 1
        assert "dataset content digest" in lines[0]
        assert "aaa" in lines[0] and "bbb" in lines[0]

    def test_reports_missing_components(self):
        lines = fingerprint_divergence({"search": {"order": 3}}, {})
        assert any("only in this run" in line for line in lines)

    def test_resume_refusal_is_human_readable(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = JsonLedger(path)
        ledger.begin({"dataset": {"sha1": "aaa", "n_snps": 20}})
        ledger.write()
        fresh = JsonLedger(path)
        with pytest.raises(ValueError) as err:
            fresh.begin(
                {"dataset": {"sha1": "bbb", "n_snps": 20}},
                resume=True,
                label="shard ledger",
            )
        message = str(err.value)
        assert "cannot resume" in message
        assert "dataset content digest" in message
        assert "shard ledger" in message
        assert "Delete the file" in message


# ---------------------------------------------------------------------------
# Orphaned shared-memory segments
# ---------------------------------------------------------------------------
class TestOrphanReaper:
    def _fake_torn_segment(self) -> str:
        """A zero-headed rp* segment, as left by a publisher SIGKILLed
        mid-write (no magic, no manifest — invalid on scan)."""
        name = "rp" + uuid.uuid4().hex[:24]
        seg = shared_memory.SharedMemory(name=name, create=True, size=4096)
        seg.buf[:64] = bytes(64)
        seg.close()
        # The reaper owns the unlink (and suppresses tracker chatter); drop
        # this process's registration so teardown does not double-clean.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
        return name

    def test_scan_reports_torn_segments(self):
        shared_store()  # the startup sweep must not race this test's fixture
        name = self._fake_torn_segment()
        try:
            infos = {info.name: info for info in scan_segments()}
            assert name in infos
            assert not infos[name].valid
            assert infos[name].orphan
        finally:
            reap_orphans()

    def test_dry_run_reports_without_unlinking(self):
        shared_store()
        name = self._fake_torn_segment()
        try:
            would = reap_orphans(dry_run=True)
            assert name in {info.name for info in would}
            assert name in {info.name for info in scan_segments()}
        finally:
            reap_orphans()

    def test_reap_unlinks_torn_segments(self):
        shared_store()
        name = self._fake_torn_segment()
        reclaimed = reap_orphans()
        assert name in {info.name for info in reclaimed}
        assert name not in {info.name for info in scan_segments()}

    def test_live_segments_are_never_reaped(self, dataset):
        from repro.distributed.shm import publish_dataset

        assert publish_dataset(dataset) is not None
        before = {info.name for info in scan_segments()}
        assert before  # the published dataset segment is visible
        reaped = {info.name for info in reap_orphans()}
        assert not (before & reaped)
        after = {info.name for info in scan_segments()}
        assert before <= after


# ---------------------------------------------------------------------------
# The chaos matrix (multi-process; every run must stay bit-identical)
# ---------------------------------------------------------------------------
class TestChaosMatrix:
    @pytest.mark.parametrize(
        "spec",
        [
            "shard.run:crash",
            "shard.claim:exit",
            "outcome.ship:error",
            "shard.run:slow:delay=0.1",
        ],
        ids=["crash", "exit", "error", "slow"],
    )
    def test_single_fault_completes_bit_identically(
        self, dataset, baseline, spec
    ):
        source = DenseRangeSource(dataset.n_snps, 2)
        outcome = run_distributed(
            dataset, source, config=_config(), workers=2, pool="fresh",
            faults=spec, retry=FAST,
        )
        assert outcome.completed
        assert _rows(outcome) == baseline
        kind = spec.split(":")[1]
        if kind in ("crash", "exit"):
            # The worker died: the pool broke and the victims retried.
            assert outcome.resilience["pool_breaks"] >= 1
            assert outcome.resilience["retries"] >= 1
        elif kind == "error":
            # An in-worker exception fails the batch without breaking the
            # pool — the cheapest rung of the ladder.
            assert outcome.resilience["pool_breaks"] == 0
            assert outcome.resilience["retries"] >= 1

    def test_torn_publish_is_detected_and_replaced(self, baseline):
        # A fresh dataset (new content digest) forces a fresh publish for
        # the torn-write fault to intercept.
        ds = generate_dataset(
            SyntheticConfig(
                n_snps=20,
                n_samples=256,
                interaction=PlantedInteraction(
                    snps=PLANTED, model="xor", effect=0.9
                ),
                seed=12,
            )
        )
        source = DenseRangeSource(ds.n_snps, 2)
        reference = _rows(
            run_distributed(ds, source, config=_config(), workers=1)
        )
        outcome = run_distributed(
            ds, source, config=_config(), workers=2, pool="fresh",
            shm="on", faults="shm.publish:torn", retry=FAST,
        )
        assert outcome.completed
        assert _rows(outcome) == reference
        assert outcome.data_plane.get("segments_torn_injected", 0) >= 1

    def test_seeded_schedule_completes_bit_identically(self, dataset, baseline):
        plan = FaultPlan.schedule(
            seed=7, n_faults=2, kinds=("crash", "exit", "slow", "error"),
            delay_seconds=0.1,
        )
        source = DenseRangeSource(dataset.n_snps, 2)
        outcome = run_distributed(
            dataset, source, config=_config(), workers=2, pool="fresh",
            faults=plan, retry=FAST,
        )
        assert outcome.completed
        assert _rows(outcome) == baseline

    def test_poison_shard_is_quarantined_and_finished_inline(
        self, dataset, baseline
    ):
        source = DenseRangeSource(dataset.n_snps, 2)
        outcome = run_distributed(
            dataset, source, config=_config(), workers=2, pool="fresh",
            faults="shard.run:crash:shard=3:count=99", retry=FAST,
        )
        assert outcome.completed
        assert _rows(outcome) == baseline
        res = outcome.resilience
        assert res["quarantined"] == [3]
        assert res["attempts"]["3"] == FAST.max_attempts
        # Every pool rung broke on the poison shard; the run finished on
        # the ladder's last rung, inline in the coordinator.
        assert res["ladder"] == "inline"
        assert res["pool_breaks"] == FAST.max_pool_breaks

    def test_watchdog_kills_hung_workers(self, dataset, baseline):
        source = DenseRangeSource(dataset.n_snps, 2)
        outcome = run_distributed(
            dataset, source, config=_config(), workers=2, pool="fresh",
            faults="shard.run:hang:delay=120:count=1",
            retry=RetryPolicy(backoff_seconds=0.01, shard_deadline_seconds=1.5),
        )
        assert outcome.completed
        assert _rows(outcome) == baseline
        assert outcome.resilience["watchdog_kills"] >= 1
        assert outcome.resilience["retries"] >= 1

    def test_history_persists_across_resume(self, dataset, tmp_path):
        source = DenseRangeSource(dataset.n_snps, 2)
        ledger = tmp_path / "chaos.json"
        outcome = run_distributed(
            dataset, source, config=_config(), workers=2, pool="fresh",
            checkpoint=str(ledger), faults="shard.run:crash", retry=FAST,
        )
        assert outcome.completed
        assert outcome.resilience["retries"] >= 1
        doc = json.loads(ledger.read_text())
        history = doc["state"]["resilience"]
        assert history["attempts"]  # the crashed shard's failed attempt
        assert len(history["runs"]) == 1
        # The resumed run re-seeds its attempt budget from the ledger.
        resumed = run_distributed(
            dataset, source, config=_config(), workers=2, pool="fresh",
            checkpoint=str(ledger), resume=True,
        )
        assert resumed.completed
        assert resumed.resilience["attempts"] == history["attempts"]
        assert _rows(resumed) == _rows(outcome)
