"""Cross-cutting property-based tests (hypothesis).

These are the library's core invariants, checked on randomly generated
datasets rather than the fixed fixtures:

* every approach produces frequency tables identical to the oracle, for any
  dataset shape, phenotype balance and sample-count alignment;
* frequency tables always partition the samples (column sums = class sizes);
* the best-scoring triplet is invariant across approaches, worker counts and
  chunk sizes;
* binarisation/packing round-trips are lossless.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EpistasisDetector
from repro.core.approaches import get_approach, list_approaches
from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle_many, validate_tables
from repro.core.scoring import K2Score
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset
from repro.datasets.dataset import GenotypeDataset
from repro.datasets.synthetic import SyntheticConfig, generate_dataset

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def genotype_datasets(draw, min_snps=3, max_snps=12, min_samples=4, max_samples=160):
    """Random case/control datasets with arbitrary genotype content."""
    n_snps = draw(st.integers(min_snps, max_snps))
    n_samples = draw(st.integers(min_samples, max_samples))
    genotypes = draw(
        st.lists(
            st.lists(st.integers(0, 2), min_size=n_samples, max_size=n_samples),
            min_size=n_snps,
            max_size=n_snps,
        )
    )
    # At least one case and one control keep both word streams non-empty
    # (the library supports empty classes, but the interesting invariants
    # concern the general case).
    phenotypes = draw(
        st.lists(st.integers(0, 1), min_size=n_samples, max_size=n_samples).filter(
            lambda p: 0 < sum(p) < len(p)
        )
    )
    return GenotypeDataset(
        genotypes=np.array(genotypes, dtype=np.int8),
        phenotypes=np.array(phenotypes, dtype=np.int8),
    )


COMMON_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


class TestApproachOracleEquivalence:
    @pytest.mark.parametrize("name", list_approaches())
    @given(dataset=genotype_datasets())
    @COMMON_SETTINGS
    def test_tables_match_oracle(self, name, dataset):
        approach = get_approach(name)
        combos = generate_combinations(dataset.n_snps, 3)
        combos = combos[:: max(1, combos.shape[0] // 40)]
        tables = approach.build_tables(approach.prepare(dataset), combos)
        oracle = contingency_oracle_many(dataset.genotypes, dataset.phenotypes, combos)
        assert np.array_equal(tables, oracle)

    @given(dataset=genotype_datasets())
    @COMMON_SETTINGS
    def test_tables_partition_samples(self, dataset):
        approach = get_approach("cpu-v2")
        combos = generate_combinations(dataset.n_snps, 3)[:40]
        tables = approach.build_tables(approach.prepare(dataset), combos)
        validate_tables(tables, dataset.n_controls, dataset.n_cases)

    @pytest.mark.parametrize("order", [2, 4, 5])
    @given(dataset=genotype_datasets(min_snps=5))
    @COMMON_SETTINGS
    def test_tables_match_oracle_other_orders(self, order, dataset):
        """The order-generic kernels stay bit-exact away from k = 3."""
        approach = get_approach("cpu-v4")
        combos = generate_combinations(dataset.n_snps, order)
        combos = combos[:: max(1, combos.shape[0] // 25)]
        tables = approach.build_tables(approach.prepare(dataset), combos)
        oracle = contingency_oracle_many(dataset.genotypes, dataset.phenotypes, combos)
        assert np.array_equal(tables, oracle)
        validate_tables(tables, dataset.n_controls, dataset.n_cases)


class TestDetectorInvariance:
    @given(dataset=genotype_datasets(min_snps=5, max_snps=9, max_samples=120))
    @COMMON_SETTINGS
    def test_best_triplet_invariant_across_approaches(self, dataset):
        results = {}
        for name in ("cpu-v1", "cpu-v4", "gpu-v4"):
            results[name] = EpistasisDetector(approach=name).detect(dataset)
        scores = {r.best_score for r in results.values()}
        assert len({round(s, 9) for s in scores}) == 1
        best = {r.best_snps for r in results.values()}
        assert len(best) == 1

    @given(
        dataset=genotype_datasets(min_snps=6, max_snps=9, max_samples=100),
        chunk_size=st.integers(min_value=1, max_value=200),
        workers=st.integers(min_value=1, max_value=3),
    )
    @COMMON_SETTINGS
    def test_best_invariant_to_scheduling(self, dataset, chunk_size, workers):
        a = EpistasisDetector(approach="cpu-v2", chunk_size=chunk_size, n_workers=workers)
        b = EpistasisDetector(approach="cpu-v2", chunk_size=4096, n_workers=1)
        ra, rb = a.detect(dataset), b.detect(dataset)
        assert ra.best_snps == rb.best_snps
        assert ra.best_score == pytest.approx(rb.best_score)


class TestEncodingProperties:
    @given(dataset=genotype_datasets())
    @COMMON_SETTINGS
    def test_binarized_encoding_is_lossless(self, dataset):
        enc = BinarizedDataset.from_dataset(dataset)
        enc.validate()
        from repro.bitops.packing import unpack_bits

        reconstructed = np.zeros_like(dataset.genotypes)
        for snp in range(dataset.n_snps):
            for g in (1, 2):
                bits = unpack_bits(enc.planes[snp, g], dataset.n_samples)
                reconstructed[snp, bits] = g
        assert np.array_equal(reconstructed, dataset.genotypes)

    @given(dataset=genotype_datasets())
    @COMMON_SETTINGS
    def test_split_encoding_preserves_class_sizes(self, dataset):
        split = PhenotypeSplitDataset.from_dataset(dataset)
        split.validate()
        assert split.n_controls == dataset.n_controls
        assert split.n_cases == dataset.n_cases
        # The 1/3 traffic saving holds once both classes amortise the padding
        # of their last word; for tiny, very unbalanced classes the padding
        # can dominate, so the saving is only asserted in that regime.
        if min(split.n_controls, split.n_cases) >= 32:
            assert split.memory_reduction_vs_naive() > 0


class TestScoringProperties:
    @given(
        tables=st.lists(
            st.lists(
                st.tuples(st.integers(0, 500), st.integers(0, 500)),
                min_size=27,
                max_size=27,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @COMMON_SETTINGS
    def test_k2_finite_and_permutation_invariant(self, tables):
        arr = np.array(tables, dtype=np.float64)
        k2 = K2Score()
        scores = k2.score(arr)
        assert np.isfinite(scores).all()
        # K2 sums independent per-row terms, so it is invariant to the order
        # of the genotype-combination rows.
        rng = np.random.default_rng(0)
        permuted = arr[:, rng.permutation(27), :]
        assert np.allclose(k2.score(permuted), scores)

    @given(
        counts=st.lists(st.integers(0, 300), min_size=27, max_size=27),
        swap=st.booleans(),
    )
    @COMMON_SETTINGS
    def test_k2_symmetric_in_phenotype_classes(self, counts, swap):
        table = np.zeros((27, 2))
        table[:, 0] = counts
        table[:, 1] = counts[::-1]
        swapped = table[:, ::-1]
        k2 = K2Score()
        assert k2.score(table[None])[0] == pytest.approx(k2.score(swapped[None])[0])


class TestSyntheticProperties:
    @given(
        n_samples=st.integers(min_value=8, max_value=400),
        case_fraction=st.floats(min_value=0.05, max_value=0.95),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @COMMON_SETTINGS
    def test_balanced_generation_hits_target_exactly(self, n_samples, case_fraction, seed):
        ds = generate_dataset(
            SyntheticConfig(
                n_snps=4, n_samples=n_samples, case_fraction=case_fraction, seed=seed
            )
        )
        assert ds.n_cases == int(round(case_fraction * n_samples))
