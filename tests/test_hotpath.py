"""Hot-path overhaul tests: word layouts, lookup-K2, autotuner, caching.

Pins the three invariants the overhaul rests on:

* **bit-exactness across word layouts** — the uint64 kernels produce the
  same tables as the uint32 kernels and the genotype-matrix oracle at
  orders 2-4, for both kernel families, with identical paper-word
  instruction charges;
* **bit-exactness of lookup-K2** — the log-factorial table path returns
  float64-identical scores to the closed-form ``gammaln`` path, end to
  end through ``detect()`` on single-device, heterogeneous CARM and
  2-worker distributed plans;
* **exact coverage under autotuning** — adaptive chunk sizing changes
  only the claim granularity, never the evaluated set or the top-k.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops.packing import WORD32, WORD64, get_layout, pack_bits, unpack_bits
from repro.bitops.popcount import popcount, popcount_sum, scalar_popcount
from repro.core import EpistasisDetector
from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle_many
from repro.core.encoding_cache import ENCODING_CACHE, EncodingCache
from repro.core.scoring import K2Score
from repro.datasets import SyntheticConfig, generate_dataset
from repro.engine.autotune import (
    AdaptiveChunkSource,
    AutotuneConfig,
    SharedCursor,
    adaptive_lane_sources,
    is_auto_chunk,
    resolve_chunk_size,
)

pytestmark = []


def _top_rows(result):
    return [(inter.snps, inter.score) for inter in result.top]


class TestWordLayouts:
    def test_layout_registry(self):
        assert get_layout("u32") is WORD32
        assert get_layout(64) if False else get_layout("64") is WORD64
        assert get_layout("uint64").paper_words == 2
        assert WORD32.paper_words == 1
        with pytest.raises(KeyError):
            get_layout("u128")

    def test_pack_bits_u64_roundtrip(self, rng):
        bits = rng.random(205) < 0.4
        w32 = pack_bits(bits, "u32")
        w64 = pack_bits(bits, "u64")
        assert w32.dtype == np.uint32 and w64.dtype == np.uint64
        assert np.array_equal(unpack_bits(w32, 205), bits)
        assert np.array_equal(unpack_bits(w64, 205), bits)
        # A uint64 plane viewed as little-endian uint32 is the uint32 plane
        # padded to an even word count.
        as32 = np.ascontiguousarray(w64).view(np.uint32)
        assert np.array_equal(as32[: w32.size], w32)
        assert not as32[w32.size:].any()

    def test_popcount_dispatch(self, rng):
        w64 = rng.integers(0, 2**63, size=64, dtype=np.uint64)
        expected = np.array([scalar_popcount(int(v)) for v in w64])
        assert np.array_equal(popcount(w64), expected)
        assert np.array_equal(popcount_sum(w64.reshape(8, 8)), expected.reshape(8, 8).sum(-1))

    @pytest.mark.parametrize("order", [2, 3, 4])
    @pytest.mark.parametrize("name", ["cpu-v1", "cpu-v2", "cpu-v4", "gpu-v4"])
    def test_kernels_bit_exact_across_layouts(self, odd_sample_dataset, order, name):
        """Both kernel families, both layouts, versus the oracle."""
        combos = generate_combinations(odd_sample_dataset.n_snps, order)[:60]
        oracle = contingency_oracle_many(
            odd_sample_dataset.genotypes, odd_sample_dataset.phenotypes, combos
        )
        tables = {}
        for layout in ("u32", "u64"):
            approach = get_approach(name, word_layout=layout)
            tables[layout] = approach.build_tables(
                approach.prepare(odd_sample_dataset), combos
            )
        assert np.array_equal(tables["u32"], oracle)
        assert np.array_equal(tables["u64"], oracle)

    @pytest.mark.parametrize("name", ["cpu-v1", "cpu-v2"])
    def test_paper_word_charges_layout_independent(self, odd_sample_dataset, name):
        """Op counts and byte traffic are per paper word on either layout."""
        combos = generate_combinations(odd_sample_dataset.n_snps, 3)[:20]
        counters = {}
        for layout in ("u32", "u64"):
            approach = get_approach(name, word_layout=layout)
            approach.build_tables(approach.prepare(odd_sample_dataset), combos)
            counters[layout] = approach.counter
        c32, c64 = counters["u32"], counters["u64"]
        # Charges are in paper words on both layouts; the only difference is
        # the u64 plane's extra padding (one paper word of slack per plane),
        # so every mnemonic agrees within that slack — never by a factor of
        # the word-width ratio.
        for mnemonic, count in c32.ops.items():
            assert count * 0.8 <= c64.ops.get(mnemonic, 0) <= count * 1.3
        assert c32.bytes_loaded * 0.8 <= c64.bytes_loaded <= c32.bytes_loaded * 1.3

    def test_default_layout_env_override(self, monkeypatch):
        from repro.bitops import packing

        monkeypatch.setenv("REPRO_WORD_WIDTH", "32")
        assert packing.default_layout() is WORD32
        monkeypatch.setenv("REPRO_WORD_WIDTH", "64")
        assert packing.default_layout() is WORD64
        monkeypatch.delenv("REPRO_WORD_WIDTH")
        assert packing.default_layout() in (WORD32, WORD64)


class TestLookupK2:
    @given(
        n_samples=st.integers(min_value=4, max_value=600),
        seed=st.integers(min_value=0, max_value=10_000),
        order=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_lookup_matches_gammaln_bitwise(self, n_samples, seed, order):
        rng = np.random.default_rng(seed)
        cells = 3**order
        # Random non-negative integer tables whose totals stay <= n_samples.
        tables = rng.integers(0, max(1, n_samples // cells), size=(16, cells, 2))

        class _Ds:
            pass

        ds = _Ds()
        ds.n_samples = n_samples
        reference = K2Score(precompute=False)
        fast = K2Score()
        fast.prepare(ds)
        assert np.array_equal(fast.score(tables), reference.score(tables))

    def test_float_tables_fall_back(self):
        fast = K2Score()

        class _Ds:
            n_samples = 100

        fast.prepare(_Ds())
        tables = np.array([[[1.0, 2.0], [3.0, 4.0], [0.0, 5.0]]])
        reference = K2Score(precompute=False)
        assert np.array_equal(fast.score(tables), reference.score(tables))
        with pytest.raises(ValueError):
            fast.score(np.array([[[-1, 2]]]))

    def test_out_of_range_counts_fall_back(self):
        fast = K2Score()

        class _Ds:
            n_samples = 4

        fast.prepare(_Ds())
        # Counts exceed the prepared table -> scipy path, identical values.
        tables = np.array([[[50, 60], [70, 80], [1, 2]]], dtype=np.int64)
        assert np.array_equal(
            fast.score(tables), K2Score(precompute=False).score(tables)
        )


@pytest.fixture(scope="module")
def hotpath_dataset():
    from repro.datasets import PlantedInteraction

    return generate_dataset(
        SyntheticConfig(
            n_snps=22,
            n_samples=700,
            interaction=PlantedInteraction(snps=(2, 9, 15), effect=0.85),
            seed=99,
        )
    )


class TestEndToEndEquivalence:
    """uint64 + lookup-K2 detect() is bit-identical to the u32 + gammaln
    reference across execution plans (the acceptance-criteria pin)."""

    def _reference(self, dataset):
        return EpistasisDetector(
            approach="cpu-v4",
            objective=K2Score(precompute=False),
            word_layout="u32",
        ).detect(dataset)

    def test_single_device(self, hotpath_dataset):
        reference = self._reference(hotpath_dataset)
        fast = EpistasisDetector(approach="cpu-v4", word_layout="u64").detect(
            hotpath_dataset
        )
        assert _top_rows(fast) == _top_rows(reference)

    def test_heterogeneous_carm(self, hotpath_dataset):
        reference = self._reference(hotpath_dataset)
        fast = EpistasisDetector(
            approach="cpu-v4",
            word_layout="u64",
            devices="cpu+gpu",
            schedule="carm",
            n_workers=2,
            chunk_size="auto",
        ).detect(hotpath_dataset)
        assert _top_rows(fast) == _top_rows(reference)

    def test_two_worker_distributed(self, hotpath_dataset):
        reference = self._reference(hotpath_dataset)
        fast = EpistasisDetector(
            approach="cpu-v4", word_layout="u64", chunk_size="auto"
        ).detect(hotpath_dataset, workers=2)
        assert _top_rows(fast) == _top_rows(reference)
        assert fast.stats.extra["distributed"]["workers"] == 2

    @pytest.mark.parametrize("order", [2, 4])
    def test_other_orders(self, hotpath_dataset, order):
        reference = EpistasisDetector(
            approach="cpu-v2",
            objective=K2Score(precompute=False),
            word_layout="u32",
            order=order,
        ).detect(hotpath_dataset)
        fast = EpistasisDetector(
            approach="cpu-v2", word_layout="u64", order=order
        ).detect(hotpath_dataset)
        assert _top_rows(fast) == _top_rows(reference)


class TestAutotuner:
    def test_sentinels(self):
        assert is_auto_chunk("auto") and is_auto_chunk(" AUTO ")
        assert not is_auto_chunk(2048) and not is_auto_chunk("2048")
        assert resolve_chunk_size("auto", default=512) == 512
        assert resolve_chunk_size(64) == 64

    def test_shared_cursor_exact_coverage(self):
        cursor = SharedCursor(1000, start=37)
        claimed = []
        sizes = [13, 999, 1, 50]
        i = 0
        while True:
            got = cursor.claim(sizes[i % len(sizes)])
            if got is None:
                break
            claimed.append(got)
            i += 1
        assert claimed[0][0] == 37
        assert claimed[-1][1] == 1000
        for (a, b), (c, d) in zip(claimed, claimed[1:]):
            assert b == c  # contiguous, no overlap, no gap
        with pytest.raises(ValueError):
            cursor.claim(0)

    def test_growth_and_shrink_within_bounds(self):
        cfg = AutotuneConfig(
            initial_chunk=1024,
            min_chunk=256,
            max_chunk=4096,
            growth=2.0,
            target_seconds=0.05,
            deadband=0.5,
        )
        src = AdaptiveChunkSource(SharedCursor(10**9), cfg)
        # Fast chunks: grow geometrically up to the cap.
        for _ in range(10):
            src.feedback(src.chunk_size, 0.001)
        assert src.chunk_size == 4096
        # Slow chunks: shrink down to the floor.
        for _ in range(10):
            src.feedback(src.chunk_size, 10.0)
        assert src.chunk_size == 256
        # In-deadband chunk: no change.
        before = src.chunk_size
        src.feedback(src.chunk_size, 0.05)
        assert src.chunk_size == before

    def test_tail_claims_do_not_adjust(self):
        src = AdaptiveChunkSource(SharedCursor(10**9))
        src.feedback(src.chunk_size - 1, 0.0)  # partial tail claim
        assert src.adjustments == 0

    def test_lane_sources_share_one_cursor(self):
        sources = adaptive_lane_sources(5000, 3)
        assert len(sources) == 3
        seen = []
        for src in sources:
            claimed = src.next_range()
            assert claimed is not None
            seen.append(claimed)
        starts = sorted(a for a, _ in seen)
        stops = sorted(b for _, b in seen)
        assert starts[0] == 0 and all(a < b for a, b in seen)
        assert len(set(starts)) == 3  # distinct, non-overlapping claims
        assert stops[-1] <= 5000

    def test_detector_rejects_bad_chunk_string(self):
        with pytest.raises(ValueError):
            EpistasisDetector(chunk_size="fastest")

    def test_dynamic_policy_honors_mixed_lane_chunks(self):
        from repro.engine import EngineDevice
        from repro.engine.autotune import FixedChunkSource
        from repro.engine.policies import DynamicPolicy

        devices = [
            EngineDevice(kind="cpu", n_workers=2, chunk_size=512),
            EngineDevice(kind="gpu", n_workers=1, chunk_size="auto"),
        ]
        assignments = DynamicPolicy().assign(100_000, devices)
        cpu_sources, gpu_sources = (a.sources for a in assignments)
        assert all(isinstance(s, FixedChunkSource) for s in cpu_sources)
        assert all(s.chunk_size == 512 for s in cpu_sources)
        assert all(isinstance(s, AdaptiveChunkSource) for s in gpu_sources)
        # Both lanes drain the one shared cursor.
        assert cpu_sources[0].cursor is gpu_sources[0].cursor
        a = cpu_sources[0].next_range()
        b = gpu_sources[0].next_range()
        assert a == (0, 512) and b[0] == 512

    def test_blocked_exec_passes_stay_memory_bounded(self):
        from repro.core.approaches.cpu_blocked import CpuBlockedApproach

        approach = CpuBlockedApproach()
        # Huge synthetic geometry: the per-pass word budget must cap the
        # transient grid regardless of sample count.
        words = approach._exec_words_per_pass(2048, 3, 8)
        assert words * 2048 * 9 * 8 <= approach.EXEC_GRID_BUDGET_BYTES
        assert approach._exec_words_per_pass(10**9, 5, 8) == 1

    def test_autotune_stats_surface(self, hotpath_dataset):
        result = EpistasisDetector(
            approach="cpu-v2", chunk_size="auto", n_workers=2
        ).detect(hotpath_dataset)
        entry = result.stats.extra["devices"]["cpu"]
        assert "autotune" in entry
        assert len(entry["autotune"]["workers"]) == 2
        assert all(c >= 1 for c in entry["autotune"]["final_chunk_sizes"])


class TestEncodingCache:
    def test_repeated_detect_packs_once(self, hotpath_dataset):
        ENCODING_CACHE.clear()
        detector = EpistasisDetector(approach="cpu-v4", word_layout="u64")
        detector.detect(hotpath_dataset)
        detector.detect(hotpath_dataset)
        # cpu-v3 shares the blocked split encoding with cpu-v4.
        EpistasisDetector(approach="cpu-v3", word_layout="u64").detect(hotpath_dataset)
        assert ENCODING_CACHE.misses == 1
        assert ENCODING_CACHE.hits >= 2

    def test_layouts_do_not_collide(self, hotpath_dataset):
        ENCODING_CACHE.clear()
        EpistasisDetector(approach="cpu-v2", word_layout="u32").detect(hotpath_dataset)
        EpistasisDetector(approach="cpu-v2", word_layout="u64").detect(hotpath_dataset)
        assert ENCODING_CACHE.misses == 2

    def test_lru_eviction_and_clear(self):
        cache = EncodingCache(max_entries=2)
        cache.get_or_build(("a",), lambda: 1)
        cache.get_or_build(("b",), lambda: 2)
        cache.get_or_build(("a",), lambda: 0)  # refresh "a"
        cache.get_or_build(("c",), lambda: 3)  # evicts "b"
        assert cache.get_or_build(("a",), lambda: -1) == 1
        assert cache.get_or_build(("b",), lambda: 99) == 99  # rebuilt
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_pipeline_stages_share_encoding(self, hotpath_dataset):
        ENCODING_CACHE.clear()
        EpistasisDetector(approach="cpu-v4", word_layout="u64").detect_staged(
            hotpath_dataset, screen_order=2, keep_snps=12
        )
        # screen + expand both ran, but the dataset was packed exactly once
        # for the full universe (the expand packs the retained subset).
        keys_misses = ENCODING_CACHE.misses
        assert keys_misses <= 2
        assert ENCODING_CACHE.hits + keys_misses >= 2

    def test_permutation_null_does_not_flood_cache(self, hotpath_dataset):
        ENCODING_CACHE.clear()
        EpistasisDetector(approach="cpu-v4", word_layout="u64").detect_staged(
            hotpath_dataset, screen_order=2, keep_snps=12, n_permutations=6
        )
        # The 6 permuted relabellings are scored cache-bypassing: misses
        # cover only the full dataset and the sliced finalist dataset, never
        # one per permutation.
        assert ENCODING_CACHE.misses <= 3
