"""Cross-order equivalence tests of the order-generic search core.

The unified :class:`~repro.core.detector.EpistasisDetector` must produce,
for every interaction order it supports,

* tables identical to the :func:`~repro.core.contingency.contingency_oracle_many`
  reference for every approach (the kernels share no code with the oracle);
* order-2 results identical to the legacy
  :class:`~repro.core.pairwise.PairwiseEpistasisDetector` shim;
* top-k rankings identical to the oracle + objective reference, for CPU and
  GPU approaches, under single-device and heterogeneous ``cpu+gpu`` engine
  plans (the ISSUE acceptance criterion).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import BruteForceReference
from repro.core import EpistasisDetector
from repro.core.approaches import get_approach, list_approaches
from repro.core.combinations import combination_count, generate_combinations
from repro.core.contingency import contingency_oracle_many
from repro.core.pairwise import PairwiseEpistasisDetector
from repro.core.scoring import K2Score
from repro.datasets import generate_null_dataset


@pytest.fixture(scope="module")
def order_dataset():
    """16 SNPs x 192 samples: C(16,4) = 1820 keeps 4-way sweeps cheap."""
    return generate_null_dataset(16, 192, seed=11)


def _sample_combos(n_snps: int, order: int, stride: int) -> np.ndarray:
    return generate_combinations(n_snps, order)[::stride]


class TestApproachesMatchOracleAcrossOrders:
    @pytest.mark.parametrize("name", list_approaches())
    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_tables_match_oracle(self, order_dataset, name, order):
        approach = get_approach(name)
        encoded = approach.prepare(order_dataset)
        combos = _sample_combos(order_dataset.n_snps, order, stride=7)
        tables = approach.build_tables(encoded, combos)
        assert tables.shape == (combos.shape[0], 3**order, 2)
        oracle = contingency_oracle_many(
            order_dataset.genotypes, order_dataset.phenotypes, combos
        )
        assert np.array_equal(tables, oracle)

    @pytest.mark.parametrize("name", ["cpu-v4", "gpu-v4"])
    def test_tables_match_oracle_order_5(self, name):
        dataset = generate_null_dataset(8, 96, seed=12)
        approach = get_approach(name)
        encoded = approach.prepare(dataset)
        combos = generate_combinations(8, 5)
        tables = approach.build_tables(encoded, combos)
        assert tables.shape == (combination_count(8, 5), 243, 2)
        oracle = contingency_oracle_many(dataset.genotypes, dataset.phenotypes, combos)
        assert np.array_equal(tables, oracle)

    def test_odd_sample_padding_at_order_2_and_4(self, odd_sample_dataset):
        for order in (2, 4):
            approach = get_approach("cpu-v2")
            encoded = approach.prepare(odd_sample_dataset)
            combos = _sample_combos(odd_sample_dataset.n_snps, order, stride=11)
            tables = approach.build_tables(encoded, combos)
            oracle = contingency_oracle_many(
                odd_sample_dataset.genotypes, odd_sample_dataset.phenotypes, combos
            )
            assert np.array_equal(tables, oracle)


class TestUnifiedDetectorMatchesLegacyPairwise:
    def test_order_2_matches_shim(self, small_dataset):
        unified = EpistasisDetector(approach="cpu-v2", order=2, top_k=6).detect(
            small_dataset
        )
        with pytest.deprecated_call():
            shim = PairwiseEpistasisDetector(top_k=6)
        legacy = shim.detect(small_dataset)
        assert unified.best_snps == legacy.best_snps
        assert unified.best_score == pytest.approx(legacy.best_score)
        assert [i.snps for i in unified.top] == [i.snps for i in legacy.top]
        assert legacy.stats.extra["order"] == 2

    def test_order_2_matches_brute_force(self, small_dataset):
        unified = EpistasisDetector(approach="cpu-v4", order=2, top_k=5).detect(
            small_dataset
        )
        reference = BruteForceReference(order=2, top_k=5).detect(small_dataset)
        assert unified.best_snps == reference.best_snps
        assert [i.snps for i in unified.top] == [i.snps for i in reference.top]


def _reference_topk(dataset, order: int, top_k: int):
    """Oracle tables + K2 objective, ranked by (score, combination)."""
    combos = generate_combinations(dataset.n_snps, order)
    tables = contingency_oracle_many(dataset.genotypes, dataset.phenotypes, combos)
    scores = K2Score().score(tables)
    ranked = sorted(range(len(scores)), key=lambda i: (scores[i], tuple(combos[i])))
    return [tuple(combos[i]) for i in ranked[:top_k]], [
        scores[i] for i in ranked[:top_k]
    ]


class TestDetectorMatchesReferenceAcrossOrdersAndPlans:
    """The ISSUE acceptance criterion, one CPU and one GPU approach."""

    @pytest.mark.parametrize("approach", ["cpu-v4", "gpu-v4"])
    @pytest.mark.parametrize("order", [2, 3, 4])
    @pytest.mark.parametrize("devices", [None, "cpu+gpu"])
    def test_topk_matches_oracle_reference(
        self, order_dataset, approach, order, devices
    ):
        top_k = 5
        detector = EpistasisDetector(
            approach=approach,
            order=order,
            top_k=top_k,
            chunk_size=97,
            n_workers=2,
            devices=devices,
            schedule="carm" if devices else "dynamic",
        )
        result = detector.detect(order_dataset)
        expected_combos, expected_scores = _reference_topk(
            order_dataset, order, top_k
        )
        assert [i.snps for i in result.top] == expected_combos
        assert [i.score for i in result.top] == pytest.approx(expected_scores)
        assert result.stats.n_combinations == combination_count(
            order_dataset.n_snps, order
        )
        assert result.stats.extra["order"] == order
        assert len(result.best_snps) == order
