"""Tests of the Cache-Aware Roofline Model."""

from __future__ import annotations

import pytest

from repro.carm import (
    CarmModel,
    KernelPoint,
    Roof,
    characterize_cpu_approaches,
    characterize_gpu_approaches,
    render_ascii,
    render_csv,
)
from repro.devices import cpu, gpu


class TestRoof:
    def test_memory_roof_scales_with_ai(self):
        roof = Roof("L1->C", "memory", 100.0)
        assert roof.attainable_gops(0.5) == pytest.approx(50.0)
        assert roof.attainable_gops(4.0) == pytest.approx(400.0)

    def test_compute_roof_flat(self):
        roof = Roof("peak", "compute", 123.0)
        assert roof.attainable_gops(0.01) == roof.attainable_gops(100.0) == 123.0


class TestCarmModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CarmModel.from_cpu(cpu("CI3"))

    def test_requires_roofs(self):
        with pytest.raises(ValueError):
            CarmModel("X", [])

    def test_cpu_roofs_present(self, model):
        names = {r.name for r in model.roofs}
        assert {"L1->C", "L2->C", "L3->C", "DRAM->C",
                "Int32 Vector ADD Peak", "Scalar ADD Peak"} <= names

    def test_cpu_memory_roof_ordering(self, model):
        ordered = [r.name for r in model.memory_roofs if not r.scalar]
        assert ordered.index("L1->C") < ordered.index("L3->C") < ordered.index("DRAM->C")

    def test_vector_peak_above_scalar_peak(self, model):
        assert model.roof("Int32 Vector ADD Peak").value > model.roof("Scalar ADD Peak").value

    def test_attainable_envelope(self, model):
        low_ai = model.attainable_gops(2**-6)
        high_ai = model.attainable_gops(2**6)
        assert low_ai < high_ai
        assert high_ai == pytest.approx(model.roof("Int32 Vector ADD Peak").value)
        with pytest.raises(ValueError):
            model.attainable_gops(0.0)

    def test_roof_lookup_error(self, model):
        with pytest.raises(KeyError):
            model.roof("L7->C")

    def test_bounding_roof(self, model):
        peak = model.roof("Int32 Vector ADD Peak").value
        point = KernelPoint("V4", arithmetic_intensity=4.0, gops=peak * 0.98)
        assert model.bounding_roof(point).name == "Int32 Vector ADD Peak"
        slow_point = KernelPoint("V1", arithmetic_intensity=4.0, gops=1.0)
        bound = model.bounding_roof(slow_point, scalar_kernel=True)
        assert bound.attainable_gops(4.0) >= 1.0

    def test_gpu_model_roofs(self):
        model = CarmModel.from_gpu(gpu("GI2"))
        names = {r.name for r in model.roofs}
        assert {"DRAM->C", "L3->C", "SLM->C", "Int32 Vector ADD Peak", "POPCNT Peak"} <= names
        assert model.roof("DRAM->C").value == pytest.approx(68.0)


class TestCharacterization:
    def test_cpu_characterization_shape_claims(self):
        model, points = characterize_cpu_approaches(cpu("CI3"))
        by = {p.name: p for p in points}
        assert set(by) == {"V1", "V2", "V3", "V4"}
        # §V-A: V2's AI drops relative to V1; blocking does not change it.
        assert by["V2"].arithmetic_intensity < by["V1"].arithmetic_intensity
        assert by["V3"].arithmetic_intensity == pytest.approx(by["V2"].arithmetic_intensity)
        # V4 is bound by the vector peak and is by far the fastest.
        assert by["V4"].bound_by == "Int32 Vector ADD Peak"
        assert by["V4"].elements_per_second > 5 * by["V3"].elements_per_second
        # Every point respects its own roof envelope (within rounding).
        for p in points:
            assert p.gops <= model.attainable_gops(p.arithmetic_intensity, include_scalar=False) * 1.01

    def test_gpu_characterization_shape_claims(self):
        model, points = characterize_gpu_approaches(gpu("GI2"))
        by = {p.name: p for p in points}
        assert by["V1"].bound_by == "DRAM->C"
        assert by["V2"].bound_by == "DRAM->C"
        assert by["V3"].elements_per_second > 10 * by["V2"].elements_per_second
        assert by["V4"].elements_per_second >= by["V3"].elements_per_second

    def test_characterization_other_devices(self):
        for key in ("CI1", "CA1"):
            _, points = characterize_cpu_approaches(cpu(key))
            assert len(points) == 4
        for key in ("GN1", "GA3"):
            _, points = characterize_gpu_approaches(gpu(key))
            assert len(points) == 4


class TestRendering:
    @pytest.fixture(scope="class")
    def characterized(self):
        return characterize_cpu_approaches(cpu("CI3"))

    def test_csv_contains_all_entities(self, characterized):
        model, points = characterized
        csv = render_csv(model, points)
        for roof in model.roofs:
            assert roof.name in csv
        for p in points:
            assert p.name in csv

    def test_ascii_renders(self, characterized):
        model, points = characterized
        chart = render_ascii(model, points)
        assert "CARM CI3" in chart
        for p in points:
            assert p.name[-1] in chart
        assert len(chart.splitlines()) > 10
