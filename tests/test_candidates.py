"""Tests of the engine's CandidateSource work model."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EpistasisDetector
from repro.core.combinations import (
    combination_count,
    combination_ranks,
    generate_combinations,
    subset_combinations,
)
from repro.engine import (
    CarmRatioPolicy,
    DenseRangeSource,
    DynamicPolicy,
    ExecutionPlan,
    ExplicitCombinationSource,
    ExplicitRankSource,
    SubsetSource,
)


class TestCombinationRanks:
    """The vectorised ranking must invert the vectorised unranking."""

    def test_identity_over_full_space(self):
        combos = generate_combinations(13, 3)
        ranks = combination_ranks(combos, 13)
        assert ranks.dtype == np.int64
        np.testing.assert_array_equal(ranks, np.arange(len(combos)))

    @settings(deadline=None, max_examples=40)
    @given(
        n_snps=st.integers(5, 40),
        order=st.integers(2, 5),
        data=st.data(),
    )
    def test_roundtrip_random_ranks(self, n_snps, order, data):
        if n_snps < order:
            n_snps = order + 3
        total = combination_count(n_snps, order)
        ranks = np.array(
            data.draw(
                st.lists(st.integers(0, total - 1), min_size=1, max_size=32)
            ),
            dtype=np.int64,
        )
        from repro.core.combinations import combinations_from_ranks

        combos = combinations_from_ranks(ranks, n_snps, order)
        np.testing.assert_array_equal(combination_ranks(combos, n_snps), ranks)

    def test_rejects_non_increasing_rows(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            combination_ranks(np.array([[3, 1, 2]]), 8)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="lie in"):
            combination_ranks(np.array([[0, 1, 9]]), 8)


class TestSubsetCombinations:
    def test_matches_itertools_over_subset(self):
        subset = np.array([1, 4, 7, 9, 14, 20])
        produced = subset_combinations(subset, 3)
        expected = np.array(list(itertools.combinations(subset.tolist(), 3)))
        np.testing.assert_array_equal(produced, expected)

    def test_range_slicing(self):
        subset = np.array([0, 2, 5, 6, 11])
        full = subset_combinations(subset, 2)
        part = subset_combinations(subset, 2, start_rank=3, count=4)
        np.testing.assert_array_equal(part, full[3:7])

    def test_rejects_unsorted_subset(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            subset_combinations(np.array([4, 2, 9]), 2)


class TestSources:
    """The four geometries must materialise consistent global k-tuples."""

    def test_dense_matches_generate(self):
        source = DenseRangeSource(12, 3)
        assert source.total == combination_count(12, 3)
        assert source.effective_snps == 12
        np.testing.assert_array_equal(
            source.materialize(7, 31), generate_combinations(12, 3, 7, 24)
        )

    def test_explicit_ranks_positional(self):
        combos = generate_combinations(11, 3)
        ranks = np.array([5, 0, 17, 17, 44])
        source = ExplicitRankSource(ranks, n_snps=11, order=3)
        np.testing.assert_array_equal(
            source.materialize(0, 5), combos[ranks]
        )

    def test_explicit_ranks_from_combinations(self):
        combos = generate_combinations(10, 4)[::7]
        source = ExplicitRankSource.from_combinations(combos, n_snps=10)
        assert source.order == 4
        np.testing.assert_array_equal(source.materialize(0, source.total), combos)

    def test_explicit_combinations_slices(self):
        combos = generate_combinations(9, 2)[10:20]
        source = ExplicitCombinationSource(combos)
        assert source.total == 10 and source.order == 2
        np.testing.assert_array_equal(source.materialize(3, 6), combos[3:6])

    def test_subset_maps_to_global(self):
        subset = np.array([2, 3, 8, 13, 17, 21])
        source = SubsetSource(subset, 3)
        assert source.total == combination_count(6, 3)
        assert source.effective_snps == 6
        expected = np.array(list(itertools.combinations(subset.tolist(), 3)))
        np.testing.assert_array_equal(source.materialize(0, source.total), expected)

    def test_subset_equals_dense_when_identity(self):
        dense = DenseRangeSource(10, 3)
        subset = SubsetSource(np.arange(10), 3)
        assert subset.total == dense.total
        np.testing.assert_array_equal(
            subset.materialize(0, subset.total), dense.materialize(0, dense.total)
        )

    def test_materialize_range_validation(self):
        source = DenseRangeSource(8, 2)
        with pytest.raises(ValueError, match="invalid item range"):
            source.materialize(0, source.total + 1)

    def test_subset_too_small_for_order(self):
        with pytest.raises(ValueError, match="cannot form"):
            SubsetSource(np.array([1, 2]), 3)


class TestPlanWithSource:
    def test_total_derived_from_source(self):
        plan = ExecutionPlan(source=DenseRangeSource(9, 3))
        assert plan.total == combination_count(9, 3)

    def test_total_mismatch_rejected(self):
        with pytest.raises(ValueError, match="disagrees"):
            ExecutionPlan(total=5, source=DenseRangeSource(9, 3))

    def test_plan_needs_total_or_source(self):
        with pytest.raises(ValueError, match="total or a candidate source"):
            ExecutionPlan()


class TestPolicyConfigureSource:
    def test_carm_sees_effective_universe(self):
        policy = CarmRatioPolicy()
        policy.configure_source(SubsetSource(np.arange(0, 40, 3), 4), n_samples=256)
        assert policy.n_snps == 14  # len(range(0, 40, 3))
        assert policy.order == 4

    def test_default_snps_fallback(self):
        policy = CarmRatioPolicy()
        combos = np.array([[0, 1]])
        source = ExplicitCombinationSource(combos[:0].reshape(0, 2))
        policy.configure_source(source, n_samples=64, default_snps=99)
        assert policy.n_snps == 99

    def test_dynamic_policy_accepts_configure_source(self):
        DynamicPolicy().configure_source(DenseRangeSource(8, 2), n_samples=10)


class TestDetectCandidates:
    """Engine runs over every geometry must agree with dense enumeration."""

    @pytest.fixture(scope="class")
    def detector(self):
        return EpistasisDetector(approach="cpu-v4", top_k=8)

    def test_explicit_ranks_match_dense_scores(self, small_dataset, detector):
        n = small_dataset.n_snps
        dense = detector.detect(small_dataset)
        ranks = np.arange(combination_count(n, 3), dtype=np.int64)
        explicit = detector.detect_candidates(
            small_dataset, ExplicitRankSource(ranks, n_snps=n, order=3)
        )
        assert [(i.snps, i.score) for i in explicit.top] == [
            (i.snps, i.score) for i in dense.top
        ]

    def test_subset_identity_matches_dense(self, small_dataset, detector):
        n = small_dataset.n_snps
        dense = detector.detect(small_dataset)
        subset = detector.detect_candidates(
            small_dataset, SubsetSource(np.arange(n), 3)
        )
        assert [(i.snps, i.score) for i in subset.top] == [
            (i.snps, i.score) for i in dense.top
        ]

    @pytest.mark.parametrize(
        "devices,schedule,workers",
        [(None, "dynamic", 1), ("cpu+gpu", "carm", 2)],
    )
    def test_subset_restriction_matches_filtered_oracle(
        self, small_dataset, devices, schedule, workers
    ):
        """Subset sweep == dense sweep filtered to combos inside the subset,
        under both a single-device plan and a heterogeneous CARM plan."""
        keep = np.array([0, 2, 5, 7, 9, 12, 15, 18, 21, 23])
        detector = EpistasisDetector(
            approach="cpu-v4",
            top_k=6,
            devices=devices,
            schedule=schedule,
            n_workers=workers,
        )
        subset_run = detector.detect_candidates(
            small_dataset, SubsetSource(keep, 3)
        )
        combos = np.array(list(itertools.combinations(keep.tolist(), 3)))
        oracle_scores = EpistasisDetector(approach="cpu-v1").score_combinations(
            small_dataset, combos
        )
        order = np.argsort(oracle_scores, kind="stable")[:6]
        expected = [
            (tuple(int(s) for s in combos[i]), float(oracle_scores[i]))
            for i in order
        ]
        assert [(i.snps, i.score) for i in subset_run.top] == expected

    def test_candidates_description_in_stats(self, small_dataset, detector):
        run = detector.detect_candidates(
            small_dataset, SubsetSource(np.arange(0, 24, 2), 3)
        )
        assert "subset" in run.stats.extra["candidates"]
        assert run.stats.extra["order"] == 3
