"""Tests of the host schedulers, map/reduce and the rank accounting.

The implementations live in :mod:`repro.engine` (schedulers, map/reduce)
and :mod:`repro.distributed` (rank accounting).  The retired
:mod:`repro.parallel` shim package is gone; importing it must fail with a
message naming the current homes, which is verified explicitly here.
"""

from __future__ import annotations

import sys
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.cluster import RankAccounting, SimulatedCluster
from repro.engine.mapreduce import parallel_map_reduce
from repro.engine.scheduling import DynamicScheduler, static_partition


class TestDynamicScheduler:
    def test_covers_range_exactly_once(self):
        scheduler = DynamicScheduler(100, chunk_size=7)
        claimed = list(scheduler)
        assert claimed[0] == (0, 7)
        assert claimed[-1] == (98, 100)
        flat = [i for start, stop in claimed for i in range(start, stop)]
        assert flat == list(range(100))

    def test_exhaustion_and_reset(self):
        scheduler = DynamicScheduler(5, chunk_size=10)
        assert scheduler.next_range() == (0, 5)
        assert scheduler.next_range() is None
        scheduler.reset()
        assert scheduler.remaining == 5

    def test_zero_total(self):
        assert DynamicScheduler(0).next_range() is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DynamicScheduler(-1)
        with pytest.raises(ValueError):
            DynamicScheduler(10, chunk_size=0)

    def test_thread_safety(self):
        scheduler = DynamicScheduler(10_000, chunk_size=13)
        seen: list[tuple[int, int]] = []
        lock = threading.Lock()

        def worker():
            while True:
                r = scheduler.next_range()
                if r is None:
                    return
                with lock:
                    seen.append(r)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        covered = sorted(i for start, stop in seen for i in range(start, stop))
        assert covered == list(range(10_000))

    @given(
        total=st.integers(min_value=0, max_value=5000),
        chunk=st.integers(min_value=1, max_value=777),
    )
    @settings(max_examples=50)
    def test_chunks_partition_range(self, total, chunk):
        chunks = list(DynamicScheduler(total, chunk))
        assert sum(stop - start for start, stop in chunks) == total
        for (s1, e1), (s2, e2) in zip(chunks, chunks[1:]):
            assert e1 == s2


class TestStaticPartition:
    def test_balanced(self):
        assert static_partition(10, 2) == [(0, 5), (5, 10)]

    def test_remainder_spread(self):
        parts = static_partition(11, 3)
        sizes = [b - a for a, b in parts]
        assert sizes == [4, 4, 3]

    def test_more_parts_than_items(self):
        parts = static_partition(2, 4)
        sizes = [b - a for a, b in parts]
        assert sizes == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            static_partition(10, 0)
        with pytest.raises(ValueError):
            static_partition(-1, 2)

    @given(
        total=st.integers(min_value=0, max_value=10_000),
        parts=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_partition_properties(self, total, parts):
        ranges = static_partition(total, parts)
        assert len(ranges) == parts
        assert ranges[0][0] == 0
        assert ranges[-1][1] == total
        sizes = [b - a for a, b in ranges]
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1


class TestParallelMapReduce:
    def _sum_worker(self, worker_id, start, stop):
        return sum(range(start, stop))

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sum_reduction(self, workers):
        scheduler = DynamicScheduler(1000, chunk_size=17)
        total, stats = parallel_map_reduce(
            scheduler, self._sum_worker, sum, n_workers=workers
        )
        assert total == sum(range(1000))
        assert len(stats) == workers
        assert sum(s.chunks_processed for s in stats) == (1000 + 16) // 17

    def test_single_worker_runs_inline(self):
        scheduler = DynamicScheduler(10, chunk_size=10)
        thread_ids = []

        def worker(worker_id, start, stop):
            thread_ids.append(threading.get_ident())
            return 0

        parallel_map_reduce(scheduler, worker, sum, n_workers=1)
        assert thread_ids == [threading.get_ident()]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            parallel_map_reduce(DynamicScheduler(1), self._sum_worker, sum, n_workers=0)


class TestRankAccounting:
    def test_scatter_and_traffic(self):
        accounting = RankAccounting(4)
        ranks = accounting.scatter_work(103)
        assert len(ranks) == 4
        accounting.broadcast_dataset(1000)
        assert all(r.bytes_received == 1000 for r in ranks)
        accounting.account_gather(bytes_per_partial=64)
        assert accounting.ranks[0].bytes_received == 1000 + 64 * 3
        assert all(r.bytes_sent == 64 for r in accounting.ranks[1:])

    def test_load_imbalance(self):
        accounting = RankAccounting(3)
        accounting.scatter_work(10)
        assert accounting.load_imbalance() == pytest.approx(4 / (10 / 3))

    def test_requires_scatter_first(self):
        accounting = RankAccounting(2)
        with pytest.raises(RuntimeError):
            accounting.broadcast_dataset(10)
        with pytest.raises(RuntimeError):
            accounting.account_gather(1)

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            RankAccounting(0)


class TestSimulatedCluster:
    def test_scatter_and_run(self):
        cluster = SimulatedCluster(4)
        ranks = cluster.scatter_work(103)
        assert len(ranks) == 4
        cluster.broadcast_dataset(1000)
        assert all(r.bytes_received == 1000 for r in ranks)

        def rank_fn(rank):
            rank.items_processed = rank.work_items
            return rank.work_items

        results = cluster.run(rank_fn)
        assert sum(results) == 103
        gathered = cluster.gather(results, bytes_per_partial=64)
        assert gathered == results
        assert cluster.ranks[0].bytes_received == 1000 + 64 * 3

    def test_requires_scatter_first(self):
        cluster = SimulatedCluster(2)
        with pytest.raises(RuntimeError):
            cluster.run(lambda r: None)
        with pytest.raises(RuntimeError):
            cluster.gather([])


class TestRemovedParallelPackage:
    """repro.parallel is removed; importing it must point at the new homes."""

    def test_import_fails_with_pointer(self):
        for name in [m for m in sys.modules if m.startswith("repro.parallel")]:
            del sys.modules[name]
        with pytest.raises(ImportError, match="repro.engine"):
            __import__("repro.parallel", fromlist=["_"])
