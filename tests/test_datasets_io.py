"""Tests of dataset persistence (NPZ and text formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.io import load_dataset, load_npz, load_text, save_npz, save_text
from repro.datasets.synthetic import generate_null_dataset


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path, small_dataset):
        path = tmp_path / "ds.npz"
        save_npz(small_dataset, path)
        loaded = load_npz(path)
        assert loaded == small_dataset

    def test_creates_parent_dirs(self, tmp_path, tiny_dataset):
        path = tmp_path / "nested" / "dir" / "ds.npz"
        save_npz(tiny_dataset, path)
        assert load_npz(path) == tiny_dataset

    def test_missing_arrays_detected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, genotypes=np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(ValueError):
            load_npz(path)

    def test_roundtrip_with_snp_names_none(self, tmp_path):
        """A dataset whose ``snp_names`` is ``None`` round-trips cleanly.

        ``save_npz`` used to write ``np.asarray(None)`` — a 0-d ``'None'``
        string — which corrupted the names field on reload; now the names
        array is simply omitted and the loader restores ``None`` so the
        dataset regenerates its defaults.
        """
        ds = generate_null_dataset(6, 64, seed=5)
        default_names = list(ds.snp_names)
        ds.snp_names = None  # simulate a dataset without explicit names
        path = tmp_path / "unnamed.npz"
        save_npz(ds, path)
        with np.load(path) as archive:
            assert "snp_names" not in archive.files
        loaded = load_npz(path)
        assert np.array_equal(loaded.genotypes, ds.genotypes)
        assert np.array_equal(loaded.phenotypes, ds.phenotypes)
        assert list(loaded.snp_names) == default_names

    def test_legacy_corrupt_names_field_restored_as_none(self, tmp_path):
        """Archives written by the pre-fix ``save_npz`` load without names."""
        ds = generate_null_dataset(5, 32, seed=6)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            genotypes=ds.genotypes,
            phenotypes=ds.phenotypes,
            snp_names=np.asarray(None, dtype=np.str_),  # the old corruption
        )
        loaded = load_npz(path)
        assert list(loaded.snp_names) == list(ds.snp_names)  # defaults again

    def test_explicit_names_survive(self, tmp_path):
        ds = generate_null_dataset(4, 32, seed=7)
        ds.snp_names = ["rs1", "rs2", "rs3", "rs4"]
        path = tmp_path / "named.npz"
        save_npz(ds, path)
        assert list(load_npz(path).snp_names) == ["rs1", "rs2", "rs3", "rs4"]


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = tmp_path / "ds.csv"
        save_text(tiny_dataset, path)
        loaded = load_text(path)
        assert np.array_equal(loaded.genotypes, tiny_dataset.genotypes)
        assert np.array_equal(loaded.phenotypes, tiny_dataset.phenotypes)

    def test_header_comment_present(self, tmp_path, tiny_dataset):
        path = tmp_path / "ds.csv"
        save_text(tiny_dataset, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")

    def test_whitespace_delimited_accepted(self, tmp_path):
        path = tmp_path / "ds.txt"
        path.write_text("0 1 2 0\n1 1 0 2\n0 1 1 0\n")
        loaded = load_text(path)
        assert loaded.n_snps == 2
        assert loaded.n_samples == 4

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0,1,2\n0,1\n0,1,0\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_too_few_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0,1,1\n")
        with pytest.raises(ValueError):
            load_text(path)


class TestLoadDataset:
    def test_dispatch_npz(self, tmp_path, tiny_dataset):
        path = tmp_path / "a.npz"
        save_npz(tiny_dataset, path)
        assert load_dataset(path) == tiny_dataset

    def test_dispatch_text(self, tmp_path, tiny_dataset):
        path = tmp_path / "a.csv"
        save_text(tiny_dataset, path)
        assert np.array_equal(load_dataset(path).genotypes, tiny_dataset.genotypes)

    def test_roundtrip_preserves_detection_result(self, tmp_path):
        """End-to-end: saving and loading does not change the best triplet."""
        from repro.core import EpistasisDetector

        ds = generate_null_dataset(12, 256, seed=42)
        path = tmp_path / "ds.npz"
        save_npz(ds, path)
        loaded = load_dataset(path)
        a = EpistasisDetector(approach="cpu-v2").detect(ds)
        b = EpistasisDetector(approach="cpu-v2").detect(loaded)
        assert a.best_snps == b.best_snps
        assert a.best_score == pytest.approx(b.best_score)
