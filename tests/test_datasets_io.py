"""Tests of dataset persistence (NPZ and text formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.io import load_dataset, load_npz, load_text, save_npz, save_text
from repro.datasets.synthetic import generate_null_dataset


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path, small_dataset):
        path = tmp_path / "ds.npz"
        save_npz(small_dataset, path)
        loaded = load_npz(path)
        assert loaded == small_dataset

    def test_creates_parent_dirs(self, tmp_path, tiny_dataset):
        path = tmp_path / "nested" / "dir" / "ds.npz"
        save_npz(tiny_dataset, path)
        assert load_npz(path) == tiny_dataset

    def test_missing_arrays_detected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, genotypes=np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(ValueError):
            load_npz(path)


class TestTextRoundtrip:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = tmp_path / "ds.csv"
        save_text(tiny_dataset, path)
        loaded = load_text(path)
        assert np.array_equal(loaded.genotypes, tiny_dataset.genotypes)
        assert np.array_equal(loaded.phenotypes, tiny_dataset.phenotypes)

    def test_header_comment_present(self, tmp_path, tiny_dataset):
        path = tmp_path / "ds.csv"
        save_text(tiny_dataset, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")

    def test_whitespace_delimited_accepted(self, tmp_path):
        path = tmp_path / "ds.txt"
        path.write_text("0 1 2 0\n1 1 0 2\n0 1 1 0\n")
        loaded = load_text(path)
        assert loaded.n_snps == 2
        assert loaded.n_samples == 4

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0,1,2\n0,1\n0,1,0\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_too_few_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0,1,1\n")
        with pytest.raises(ValueError):
            load_text(path)


class TestLoadDataset:
    def test_dispatch_npz(self, tmp_path, tiny_dataset):
        path = tmp_path / "a.npz"
        save_npz(tiny_dataset, path)
        assert load_dataset(path) == tiny_dataset

    def test_dispatch_text(self, tmp_path, tiny_dataset):
        path = tmp_path / "a.csv"
        save_text(tiny_dataset, path)
        assert np.array_equal(load_dataset(path).genotypes, tiny_dataset.genotypes)

    def test_roundtrip_preserves_detection_result(self, tmp_path):
        """End-to-end: saving and loading does not change the best triplet."""
        from repro.core import EpistasisDetector

        ds = generate_null_dataset(12, 256, seed=42)
        path = tmp_path / "ds.npz"
        save_npz(ds, path)
        loaded = load_dataset(path)
        a = EpistasisDetector(approach="cpu-v2").detect(ds)
        b = EpistasisDetector(approach="cpu-v2").detect(loaded)
        assert a.best_snps == b.best_snps
        assert a.best_score == pytest.approx(b.best_score)
