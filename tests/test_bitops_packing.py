"""Unit and property tests of bit-plane packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitops.packing import (
    pack_bitplanes,
    pack_bits,
    packed_word_count,
    pad_to_words,
    unpack_bits,
)
from repro.bitops.popcount import popcount32


class TestPackedWordCount:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 0), (1, 1), (31, 1), (32, 1), (33, 2), (64, 2), (65, 3), (16384, 512)],
    )
    def test_values(self, n, expected):
        assert packed_word_count(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packed_word_count(-1)


class TestPadToWords:
    def test_aligned_input_returned_unchanged(self):
        bits = np.ones(64, dtype=bool)
        assert pad_to_words(bits) is bits

    def test_padding_is_false(self):
        bits = np.ones(33, dtype=bool)
        padded = pad_to_words(bits)
        assert padded.shape == (64,)
        assert padded[:33].all()
        assert not padded[33:].any()

    def test_multidimensional(self):
        bits = np.ones((3, 10), dtype=bool)
        assert pad_to_words(bits).shape == (3, 32)


class TestPackUnpackRoundtrip:
    def test_known_word(self):
        bits = np.zeros(32, dtype=bool)
        bits[[0, 2, 3]] = True
        assert pack_bits(bits).tolist() == [0b1101]

    def test_bit_position_convention(self):
        """Sample ``s`` occupies bit ``s % 32`` of word ``s // 32``."""
        for s in (0, 1, 31, 32, 45, 63):
            bits = np.zeros(64, dtype=bool)
            bits[s] = True
            words = pack_bits(bits)
            assert words[s // 32] == np.uint32(1 << (s % 32))

    @given(hnp.arrays(bool, st.integers(min_value=1, max_value=200)))
    @settings(max_examples=100)
    def test_roundtrip(self, bits):
        words = pack_bits(bits)
        assert words.dtype == np.uint32
        assert words.shape[-1] == packed_word_count(bits.shape[-1])
        assert np.array_equal(unpack_bits(words, bits.shape[-1]), bits)

    @given(hnp.arrays(bool, st.integers(min_value=1, max_value=200)))
    @settings(max_examples=100)
    def test_popcount_preserved(self, bits):
        assert popcount32(pack_bits(bits)).sum() == bits.sum()

    def test_2d_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(5, 77)).astype(bool)
        words = pack_bits(bits)
        assert words.shape == (5, 3)
        assert np.array_equal(unpack_bits(words, 77), bits)

    def test_unpack_word_count_mismatch(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(2, dtype=np.uint32), 100)


class TestPackBitplanes:
    def test_shape(self, small_dataset):
        planes = pack_bitplanes(small_dataset.genotypes)
        assert planes.shape == (
            small_dataset.n_snps,
            3,
            packed_word_count(small_dataset.n_samples),
        )
        assert planes.dtype == np.uint32

    def test_planes_partition_samples(self, small_dataset):
        planes = pack_bitplanes(small_dataset.genotypes)
        counts = popcount32(planes).sum(axis=-1)  # (n_snps, 3)
        assert np.array_equal(counts.sum(axis=1),
                              np.full(small_dataset.n_snps, small_dataset.n_samples))
        for snp in range(small_dataset.n_snps):
            assert np.array_equal(counts[snp], small_dataset.genotype_counts(snp))

    def test_planes_disjoint(self, small_dataset):
        planes = pack_bitplanes(small_dataset.genotypes)
        overlap = (
            (planes[:, 0] & planes[:, 1])
            | (planes[:, 0] & planes[:, 2])
            | (planes[:, 1] & planes[:, 2])
        )
        assert not overlap.any()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_bitplanes(np.zeros(10, dtype=np.int8))

    def test_rejects_out_of_range_genotypes(self):
        geno = np.array([[0, 1, 3]], dtype=np.int8)
        with pytest.raises(ValueError):
            pack_bitplanes(geno)
