"""End-to-end integration tests across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EpistasisDetector,
    PlantedInteraction,
    SyntheticConfig,
    generate_dataset,
    load_dataset,
    save_npz,
)
from repro.baselines import BruteForceReference, Mpi3snpBaseline
from repro.core.approaches import list_approaches
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.devices import gpu
from repro.gpusim import NDRange, SimulatedGpu, epistasis_kernel_split, make_split_kernel_args
from tests.conftest import PLANTED_TRIPLET


class TestPlantedInteractionRecovery:
    @pytest.mark.parametrize("model", ["threshold", "multiplicative", "xor"])
    def test_recovery_across_penetrance_models(self, model):
        planted = (2, 9, 15)
        dataset = generate_dataset(
            SyntheticConfig(
                n_snps=20,
                n_samples=3000,
                interaction=PlantedInteraction(
                    snps=planted, model=model, baseline=0.05, effect=0.95
                ),
                seed=31,
            )
        )
        result = EpistasisDetector(approach="cpu-v4", n_workers=2, top_k=5).detect(dataset)
        assert result.contains(planted)

    @pytest.mark.parametrize(
        "approach", ["cpu-v1", "cpu-v3", "gpu-v2", "gpu-v4"]
    )
    def test_recovery_with_every_approach_family(self, planted_dataset, approach):
        result = EpistasisDetector(approach=approach, top_k=3).detect(planted_dataset)
        assert result.contains(PLANTED_TRIPLET)

    def test_recovery_with_alternative_objectives(self, planted_dataset):
        for objective in ("k2", "mutual-information", "gini", "chi2"):
            result = EpistasisDetector(
                approach="cpu-v4", objective=objective, top_k=5
            ).detect(planted_dataset)
            assert result.contains(PLANTED_TRIPLET), objective

    def test_null_dataset_has_no_standout_interaction(self, small_dataset):
        """On a null dataset the best and median scores are close together
        compared to the spread seen on the planted dataset."""
        result = EpistasisDetector(approach="cpu-v2", top_k=10).detect(small_dataset)
        scores = np.array([i.score for i in result.top])
        spread = (scores[-1] - scores[0]) / abs(scores[-1])
        assert spread < 0.05


class TestFullPipelinePersistence:
    def test_generate_save_load_detect(self, tmp_path):
        dataset = generate_dataset(
            SyntheticConfig(
                n_snps=18,
                n_samples=1024,
                interaction=PlantedInteraction(snps=(1, 8, 14), effect=0.9, baseline=0.05),
                seed=77,
            )
        )
        path = tmp_path / "cohort.npz"
        save_npz(dataset, path)
        reloaded = load_dataset(path)
        result = EpistasisDetector(approach="gpu-v4", n_workers=2).detect(reloaded)
        assert result.contains((1, 8, 14))


class TestCrossImplementationAgreement:
    def test_all_stacks_agree_end_to_end(self, planted_dataset):
        """Optimised approaches, the MPI3SNP baseline, the brute-force oracle
        and the GPU simulator must all nominate the same interaction."""
        subset = planted_dataset.subset_snps(range(14))
        expected = BruteForceReference(top_k=1).detect(subset).best_snps

        for name in list_approaches():
            got = EpistasisDetector(approach=name).detect(subset).best_snps
            assert got == expected, name

        assert Mpi3snpBaseline(n_ranks=3).detect(subset).best_snps == expected

        split = PhenotypeSplitDataset.from_dataset(subset)
        args = make_split_kernel_args(split, layout="tiled", block_size=4)
        results, _ = SimulatedGpu(gpu("GI2")).launch(
            epistasis_kernel_split(args), NDRange((14, 14, 14), subgroup_size=32)
        )
        best_sim = min(results, key=lambda r: r[2])[0]
        assert tuple(best_sim) == expected

    def test_counters_accumulate_across_full_run(self, small_dataset):
        detector = EpistasisDetector(approach="cpu-v4", n_workers=2, chunk_size=512)
        result = detector.detect(small_dataset)
        counts = result.stats.op_counts
        n_combos = small_dataset.n_combinations(3)
        words = sum(
            PhenotypeSplitDataset.from_dataset(small_dataset).words_per_class
        )
        # The word-level POPCNT count is exactly 27 per combination per word.
        assert counts["POPCNT"] >= 27 * n_combos * words
        assert result.stats.bytes_loaded > 0


class TestScalingBehaviour:
    def test_throughput_reported_consistently(self, small_dataset):
        result = EpistasisDetector(approach="cpu-v4").detect(small_dataset)
        stats = result.stats
        assert stats.elements == stats.n_combinations * stats.n_samples
        assert stats.elements_per_second == pytest.approx(
            stats.elements / stats.elapsed_seconds
        )

    def test_larger_sample_count_scales_elements(self):
        small = generate_dataset(SyntheticConfig(n_snps=12, n_samples=256, seed=1))
        large = generate_dataset(SyntheticConfig(n_snps=12, n_samples=1024, seed=1))
        r_small = EpistasisDetector(approach="cpu-v2").detect(small)
        r_large = EpistasisDetector(approach="cpu-v2").detect(large)
        assert r_large.stats.elements == 4 * r_small.stats.elements
