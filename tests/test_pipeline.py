"""Tests of the staged search pipeline (screen → expand → refine → permutation)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import EpistasisDetector
from repro.core.combinations import combination_count
from repro.pipeline import (
    ExpandStage,
    PermutationStage,
    RefineStage,
    ScreenStage,
    SearchPipeline,
)
from tests.conftest import PLANTED_TRIPLET


def _key(result):
    """Bit-exact comparison key of a top list."""
    return [(i.snps, i.score, i.snp_names) for i in result.top]


class TestFullRetentionEquivalence:
    """A staged run that retains every SNP must be bit-identical to detect()."""

    @pytest.mark.parametrize(
        "devices,schedule,workers",
        [
            (None, "dynamic", 1),
            (None, "static", 2),
            ("cpu+gpu", "carm", 2),
        ],
    )
    def test_bit_identical_to_exhaustive(
        self, planted_dataset, devices, schedule, workers
    ):
        detector = EpistasisDetector(
            approach="cpu-v4",
            order=3,
            top_k=7,
            devices=devices,
            schedule=schedule,
            n_workers=workers,
        )
        dense = detector.detect(planted_dataset)
        staged = detector.detect_staged(
            planted_dataset, screen_order=2, keep_snps=planted_dataset.n_snps
        )
        assert _key(staged) == _key(dense)
        assert staged.best_snps == dense.best_snps

    def test_full_retention_keeps_whole_universe(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v2", order=3)
        staged = detector.detect_staged(
            planted_dataset, keep_snps=planted_dataset.n_snps
        )
        assert staged.retained_snps == list(range(planted_dataset.n_snps))


class TestScreenExpand:
    def test_recovers_planted_interaction_with_pruning(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3, top_k=5)
        staged = detector.detect_staged(planted_dataset, screen_order=2, keep_snps=8)
        assert staged.best_snps == PLANTED_TRIPLET
        assert staged.evaluated_fraction < 0.2
        assert staged.final_order_evaluated == combination_count(8, 3)
        assert staged.exhaustive_combinations == combination_count(
            planted_dataset.n_snps, 3
        )

    def test_screen_retains_planted_snps(self, planted_dataset):
        pipeline = SearchPipeline(
            [ScreenStage(order=2, keep=6), ExpandStage(order=3)],
            approach="cpu-v4",
        )
        outcome = pipeline.run(planted_dataset)
        assert set(PLANTED_TRIPLET) <= set(outcome.retained_snps)
        [screen, expand] = outcome.stages
        assert screen.stage == "screen" and screen.retained_snps == 6
        assert expand.stage == "expand"
        assert expand.candidates == combination_count(6, 3)
        assert expand.effective_snps == 6

    def test_stage_reports_carry_estimates_and_devices(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3)
        staged = detector.detect_staged(planted_dataset, keep_snps=8)
        for stage in staged.stages:
            assert stage.estimated_seconds is not None
            assert stage.estimated_seconds > 0
            assert stage.device_stats
            assert stage.schedule == "dynamic"

    def test_chained_screens_narrow_monotonically(self, planted_dataset):
        pipeline = SearchPipeline(
            [
                ScreenStage(order=2, keep=16),
                ScreenStage(order=2, keep=8),
                ExpandStage(order=3),
            ]
        )
        outcome = pipeline.run(planted_dataset)
        assert len(outcome.retained_snps) == 8
        assert outcome.stages[1].candidates == combination_count(16, 2)

    def test_screen_order_must_be_below_detection_order(self, planted_dataset):
        detector = EpistasisDetector(order=3)
        with pytest.raises(ValueError, match="below the detection"):
            detector.detect_staged(planted_dataset, screen_order=3)

    def test_pipeline_without_expand_raises(self, planted_dataset):
        pipeline = SearchPipeline([ScreenStage(order=2, keep=8)])
        with pytest.raises(RuntimeError, match="no finalists"):
            pipeline.run(planted_dataset)


class TestRefineStage:
    def test_rescored_under_second_objective(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3, top_k=5)
        staged = detector.detect_staged(
            planted_dataset, keep_snps=10, refine_objective="mutual-information"
        )
        refine = staged.stages[-1]
        assert refine.stage == "refine"
        assert refine.objective == "mutual-information"
        assert refine.candidates == 5
        # Refined scores must equal direct scoring under the new objective.
        combos = np.array([i.snps for i in staged.top])
        direct = EpistasisDetector(
            approach="cpu-v1", objective="mutual-information"
        ).score_combinations(planted_dataset, combos)
        np.testing.assert_allclose([i.score for i in staged.top], direct)
        # Re-ranked ascending under the refine objective.
        scores = [i.score for i in staged.top]
        assert scores == sorted(scores)

    def test_refine_requires_objective(self):
        with pytest.raises(ValueError, match="needs an objective"):
            RefineStage()

    def test_refine_requires_finalists(self, planted_dataset):
        pipeline = SearchPipeline([RefineStage(objective="gini")])
        with pytest.raises(ValueError, match="needs finalists"):
            pipeline.run(planted_dataset)


class TestPermutationStage:
    def test_p_values_aligned_and_bounded(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3, top_k=4)
        staged = detector.detect_staged(
            planted_dataset, keep_snps=8, n_permutations=19, permutation_seed=11
        )
        assert staged.p_values is not None
        assert len(staged.p_values) == len(staged.top)
        assert all(0.0 < p <= 1.0 for p in staged.p_values)
        # The planted interaction survives every random relabelling.
        assert staged.best_snps == PLANTED_TRIPLET
        assert staged.p_values[0] == pytest.approx(1.0 / 20.0)
        perm = staged.stages[-1]
        assert perm.stage == "permutation"
        assert perm.evaluated == 20 * 4  # observed + 19 nulls, 4 finalists

    def test_deterministic_given_seed(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v2", order=3, top_k=3)
        first = detector.detect_staged(
            planted_dataset, keep_snps=6, n_permutations=7, permutation_seed=5
        )
        second = detector.detect_staged(
            planted_dataset, keep_snps=6, n_permutations=7, permutation_seed=5
        )
        assert first.p_values == second.p_values

    def test_requires_finalists(self, planted_dataset):
        pipeline = SearchPipeline([PermutationStage(n_permutations=3)])
        with pytest.raises(ValueError, match="needs finalists"):
            pipeline.run(planted_dataset)

    def test_p_values_test_the_refine_objective(self, planted_dataset):
        """With a refine stage, the permutation null must score under the
        refine objective — the statistic displayed next to the p-values."""
        detector = EpistasisDetector(approach="cpu-v2", order=3, top_k=3)
        staged = detector.detect_staged(
            planted_dataset,
            keep_snps=8,
            refine_objective="gini",
            n_permutations=9,
        )
        perm = staged.stages[-1]
        assert perm.stage == "permutation"
        assert perm.objective == "gini"
        assert staged.stages[-2].objective == "gini"

    def test_stage_validate_override(self, planted_dataset):
        pipeline = SearchPipeline(
            [ScreenStage(order=2, keep=6), ExpandStage(order=3, validate=True)]
        )
        outcome = pipeline.run(planted_dataset)
        assert outcome.best_snps == PLANTED_TRIPLET

    def test_null_runs_do_not_inflate_sweep_metric(self, planted_dataset):
        """Refine/permutation tables are finalist re-scoring, not sweep
        coverage: even a long null on a tiny space keeps the pruning
        fraction at nCr(keep, k) / nCr(M, k) (and below 1)."""
        detector = EpistasisDetector(approach="cpu-v2", order=3, top_k=5)
        staged = detector.detect_staged(
            planted_dataset,
            keep_snps=6,
            refine_objective="gini",
            n_permutations=50,
        )
        assert staged.final_order_evaluated == combination_count(6, 3)
        assert staged.evaluated_fraction == pytest.approx(
            combination_count(6, 3)
            / combination_count(planted_dataset.n_snps, 3)
        )
        assert staged.evaluated_fraction < 1.0
        # The re-scoring stages still report their own table counts.
        refine, perm = staged.stages[-2], staged.stages[-1]
        assert not refine.sweep and not perm.sweep
        assert perm.evaluated == 51 * 5


class TestPerStageConfiguration:
    def test_stage_overrides_apply(self, planted_dataset):
        pipeline = SearchPipeline(
            [
                ScreenStage(order=2, keep=8, approach="gpu-v4", schedule="guided"),
                ExpandStage(order=3, devices="cpu+gpu", schedule="carm", n_workers=2),
            ],
            approach="cpu-v4",
        )
        outcome = pipeline.run(planted_dataset)
        [screen, expand] = outcome.stages
        assert screen.approach == "gpu-v4"
        assert screen.schedule == "guided"
        assert expand.schedule == "carm"
        assert set(expand.device_stats) == {"cpu", "gpu"}

    def test_progress_reports_stage_names(self, planted_dataset):
        seen: list[tuple[str, int, int]] = []
        pipeline = SearchPipeline(
            [ScreenStage(order=2, keep=8), ExpandStage(order=3)],
            chunk_size=64,
        )
        pipeline.run(
            planted_dataset, progress=lambda stage, done, total: seen.append((stage, done, total))
        )
        stages = {s for s, _, _ in seen}
        assert stages == {"screen", "expand"}
        screen_final = [(d, t) for s, d, t in seen if s == "screen"][-1]
        assert screen_final[0] == screen_final[1]


class TestPipelineResult:
    def test_to_dict_is_json_serialisable(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3, top_k=3)
        staged = detector.detect_staged(
            planted_dataset, keep_snps=8, n_permutations=5
        )
        doc = json.loads(json.dumps(staged.to_dict()))
        assert doc["final_order"] == 3
        assert doc["top"][0]["rank"] == 1
        assert doc["top"][0]["snps"] == list(PLANTED_TRIPLET)
        assert "p_value" in doc["top"][0]
        assert len(doc["stages"]) == 3
        assert doc["stages"][0]["stage"] == "screen"

    def test_summary_mentions_stages_and_fraction(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3)
        staged = detector.detect_staged(planted_dataset, keep_snps=8)
        text = staged.summary()
        assert "staged search" in text
        assert "screen" in text and "expand" in text
        assert "best interaction" in text

    def test_contains(self, planted_dataset):
        detector = EpistasisDetector(approach="cpu-v4", order=3)
        staged = detector.detect_staged(planted_dataset, keep_snps=8)
        assert staged.contains(PLANTED_TRIPLET)
        assert not staged.contains((0, 1, 2))


class TestStagedCostModel:
    def test_estimate_staged_search_document(self):
        from repro.perfmodel import estimate_staged_search

        doc = estimate_staged_search(1024, 4096, keep_snps=64)
        assert doc["exhaustive_tables"] == combination_count(1024, 3)
        assert doc["stages"][0]["tables"] == combination_count(1024, 2)
        assert doc["stages"][1]["tables"] == combination_count(64, 3)
        assert doc["expand_fraction"] < 0.001
        assert doc["modelled_speedup"] > 1.0

    def test_estimate_rejects_bad_budget(self):
        from repro.perfmodel import estimate_staged_search

        with pytest.raises(ValueError, match="keep_snps"):
            estimate_staged_search(100, 256, keep_snps=0)
        with pytest.raises(ValueError, match="cannot form"):
            estimate_staged_search(100, 256, keep_snps=2, expand_order=3)
