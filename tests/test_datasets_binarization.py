"""Tests of the BOOST binarised encodings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops.packing import unpack_bits
from repro.bitops.popcount import popcount
from repro.datasets.binarization import BinarizedDataset, PhenotypeSplitDataset


class TestBinarizedDataset:
    def test_geometry(self, small_dataset):
        enc = BinarizedDataset.from_dataset(small_dataset)
        assert enc.n_snps == small_dataset.n_snps
        assert enc.n_samples == small_dataset.n_samples
        assert enc.n_words == enc.layout.word_count(small_dataset.n_samples)
        assert enc.planes.shape == (enc.n_snps, 3, enc.n_words)
        assert enc.phenotype_words.shape == (enc.n_words,)

    def test_case_control_counts(self, odd_sample_dataset):
        enc = BinarizedDataset.from_dataset(odd_sample_dataset)
        assert enc.n_cases == odd_sample_dataset.n_cases
        assert enc.n_controls == odd_sample_dataset.n_controls

    def test_planes_decode_to_genotypes(self, small_dataset):
        enc = BinarizedDataset.from_dataset(small_dataset)
        for snp in (0, 7, 23):
            decoded = np.zeros(small_dataset.n_samples, dtype=np.int8)
            for g in (1, 2):
                bits = unpack_bits(enc.planes[snp, g], small_dataset.n_samples)
                decoded[bits] = g
            assert np.array_equal(decoded, small_dataset.genotypes[snp])

    def test_validate_passes(self, odd_sample_dataset):
        BinarizedDataset.from_dataset(odd_sample_dataset).validate()

    def test_validate_detects_corruption(self, small_dataset):
        enc = BinarizedDataset.from_dataset(small_dataset)
        enc.planes[0, 0, 0] ^= np.uint32(1)
        with pytest.raises(ValueError):
            enc.validate()

    def test_nbytes(self, small_dataset):
        enc = BinarizedDataset.from_dataset(small_dataset)
        expected = (enc.n_snps * 3 + 1) * enc.n_words * enc.layout.bytes
        assert enc.nbytes() == expected

    def test_snp_plane_is_view(self, small_dataset):
        enc = BinarizedDataset.from_dataset(small_dataset)
        assert enc.snp_plane(2, 1).base is not None


class TestPhenotypeSplitDataset:
    def test_geometry(self, odd_sample_dataset):
        split = PhenotypeSplitDataset.from_dataset(odd_sample_dataset)
        assert split.n_snps == odd_sample_dataset.n_snps
        assert split.n_controls == odd_sample_dataset.n_controls
        assert split.n_cases == odd_sample_dataset.n_cases
        assert split.n_samples == odd_sample_dataset.n_samples
        ctrl_words, case_words = split.words_per_class
        assert ctrl_words == split.layout.word_count(split.n_controls)
        assert case_words == split.layout.word_count(split.n_cases)
        assert split.control_planes.shape == (split.n_snps, 2, ctrl_words)

    def test_sample_order_traceability(self, odd_sample_dataset):
        split = PhenotypeSplitDataset.from_dataset(odd_sample_dataset)
        assert np.array_equal(split.control_order, odd_sample_dataset.control_indices)
        assert np.array_equal(split.case_order, odd_sample_dataset.case_indices)

    def test_planes_for_class(self, small_dataset):
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        planes0, n0 = split.planes_for_class(0)
        planes1, n1 = split.planes_for_class(1)
        assert n0 == split.n_controls and n1 == split.n_cases
        with pytest.raises(ValueError):
            split.planes_for_class(2)

    def test_padding_mask(self, odd_sample_dataset):
        split = PhenotypeSplitDataset.from_dataset(odd_sample_dataset)
        for cls in (0, 1):
            mask = split.padding_mask(cls)
            _, n_valid = split.planes_for_class(cls)
            assert popcount(mask).sum() == n_valid

    def test_genotype2_inferrable(self, small_dataset):
        """NOR of the stored planes recovers exactly the genotype-2 samples."""
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        geno_ctrl = small_dataset.genotypes[:, small_dataset.control_indices]
        for snp in (0, 11, 23):
            plane0, plane1 = split.control_planes[snp]
            inferred = ~(plane0 | plane1) & split.padding_mask(0)
            bits = unpack_bits(inferred, split.n_controls)
            assert np.array_equal(bits, geno_ctrl[snp] == 2)

    def test_counts_match_dataset(self, small_dataset):
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        geno_case = small_dataset.genotypes[:, small_dataset.case_indices]
        counts_g0 = popcount(split.case_planes[:, 0]).sum(axis=-1)
        assert np.array_equal(counts_g0, (geno_case == 0).sum(axis=1))

    def test_memory_reduction_about_one_third(self, small_dataset):
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        assert 0.25 <= split.memory_reduction_vs_naive() <= 0.40

    def test_validate(self, small_dataset):
        split = PhenotypeSplitDataset.from_dataset(small_dataset)
        split.validate()
        split.control_planes[0, 1] |= split.control_planes[0, 0]
        if split.control_planes[0, 0].any():
            with pytest.raises(ValueError):
                split.validate()

    @given(
        n_samples=st.integers(min_value=2, max_value=300),
        case_fraction=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_split_partitions_samples(self, n_samples, case_fraction, seed):
        from repro.datasets.synthetic import SyntheticConfig, generate_dataset

        ds = generate_dataset(
            SyntheticConfig(
                n_snps=5, n_samples=n_samples, case_fraction=case_fraction, seed=seed
            )
        )
        split = PhenotypeSplitDataset.from_dataset(ds)
        assert split.n_controls + split.n_cases == n_samples
        # Per-SNP genotype counts across both classes must equal the dataset's.
        for snp in range(ds.n_snps):
            total = (
                popcount(split.control_planes[snp]).sum()
                + popcount(split.case_planes[snp]).sum()
            )
            n_genotype2 = int((ds.genotypes[snp] == 2).sum())
            assert total == n_samples - n_genotype2
