"""Tests of the analytical performance models (counters, CPU, GPU, efficiency)."""

from __future__ import annotations

import pytest

from repro.bitops.simd import ISA_PRESETS
from repro.devices import ALL_CPUS, ALL_GPUS, cpu, gpu
from repro.perfmodel import (
    approach_counts,
    energy_efficiency,
    estimate_cpu,
    estimate_gpu,
    heterogeneous_throughput,
)
from repro.perfmodel.cpu_model import scalar_cycles_per_word, vector_cycles_per_register
from repro.perfmodel.efficiency import device_throughput


class TestApproachCounts:
    def test_versions_and_devices(self):
        for device in ("cpu", "gpu"):
            for version in (1, 2, 3, 4):
                counts = approach_counts(version, device)
                assert counts.ops_per_element > 0
                assert counts.bytes_per_element > 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            approach_counts(5)
        with pytest.raises(ValueError):
            approach_counts(1, "fpga")

    def test_v2_reduces_ops_and_bytes(self):
        v1 = approach_counts(1, "cpu")
        v2 = approach_counts(2, "cpu")
        assert v2.ops_per_element < v1.ops_per_element
        assert v2.bytes_per_element < v1.bytes_per_element
        # §IV-A: the AI drops when the phenotype is removed.
        assert v2.arithmetic_intensity < v1.arithmetic_intensity

    def test_blocking_does_not_change_counts(self):
        v2, v3, v4 = (approach_counts(v, "cpu") for v in (2, 3, 4))
        assert v2.ops_per_element == v3.ops_per_element == v4.ops_per_element
        assert v2.bytes_per_element == v3.bytes_per_element == v4.bytes_per_element
        assert v3.serving_level != v2.serving_level  # only the serving level moves

    def test_totals_scale(self):
        counts = approach_counts(4, "cpu")
        assert counts.total_ops(10, 100) == pytest.approx(counts.ops_per_element * 1000)

    def test_order_3_matches_default(self):
        """``order=3`` is the paper's setting and the default characterisation."""
        for device in ("cpu", "gpu"):
            for version in (1, 2, 3, 4):
                explicit = approach_counts(version, device, order=3)
                default = approach_counts(version, device)
                assert explicit == default
        v1 = approach_counts(1, "cpu", order=3)
        v2 = approach_counts(2, "cpu", order=3)
        # The fully expanded per-word mixes behind the paper's nominal
        # 162/57 instruction accounting (§IV-A).
        assert (v1.ops_per_combo_word, v1.loads_per_combo_word) == (216.0, 10.0)
        assert (v2.ops_per_combo_word, v2.loads_per_combo_word) == (111.0, 6.0)

    def test_arithmetic_intensity_rises_with_order(self):
        """3^k compute vs linear-in-k traffic: AI grows steeply with k."""
        for device in ("cpu", "gpu"):
            ai = [approach_counts(4, device, order=k).arithmetic_intensity for k in (2, 3, 4, 5)]
            assert ai == sorted(ai)
            assert ai[-1] > 10 * ai[0]


class TestOrderAwareEstimates:
    def test_cpu_throughput_decays_with_order(self):
        spec = cpu("CI3")
        rates = [
            estimate_cpu(spec, 4, order=k).elements_per_second_total for k in (2, 3, 4)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_gpu_throughput_decays_with_order(self):
        spec = gpu("GN4")
        rates = [
            estimate_gpu(spec, 4, order=k).elements_per_second_total for k in (2, 3, 4)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_device_throughput_order_passthrough(self):
        for spec in (cpu("CI3"), gpu("GN4")):
            assert device_throughput(spec, order=2) > device_throughput(spec, order=4)

    def test_default_order_is_3(self):
        spec = cpu("CI3")
        assert (
            estimate_cpu(spec, 4).elements_per_second_total
            == estimate_cpu(spec, 4, order=3).elements_per_second_total
        )


class TestCpuCycleModel:
    def test_vector_popcnt_much_cheaper(self):
        fast = vector_cycles_per_register(ISA_PRESETS["avx512-vpopcnt"])
        slow = vector_cycles_per_register(ISA_PRESETS["avx512-skx"])
        assert slow > 2.5 * fast

    def test_scalar_cycles_versions(self):
        assert scalar_cycles_per_word(1) > scalar_cycles_per_word(2)
        assert scalar_cycles_per_word(2) == scalar_cycles_per_word(3)
        with pytest.raises(ValueError):
            scalar_cycles_per_word(4)

    def test_invalid_version(self):
        with pytest.raises(ValueError):
            estimate_cpu(cpu("CI3"), approach_version=0)


class TestCpuEstimates:
    def test_figure3a_winner_is_ci3_avx512(self):
        per_core = {
            spec.key: estimate_cpu(spec, 4, n_snps=8192).giga_elements_per_second_per_core
            for spec in ALL_CPUS
        }
        assert per_core["CI3"] == max(per_core.values())
        assert per_core["CI3"] > 2.0 * per_core["CI1"]
        # Paper: ~15.4 G elements/s/core at 8192 SNPs (reproduction within 25%).
        assert per_core["CI3"] == pytest.approx(15.4, rel=0.25)

    def test_figure3b_avx_machines_similar_per_cycle(self):
        values = [
            estimate_cpu(cpu(k), 4, isa=cpu(k).avx_vector_isa, n_snps=8192).elements_per_cycle_per_core
            for k in ("CI1", "CI2", "CI3", "CA2")
        ]
        assert max(values) / min(values) < 1.3

    def test_figure3c_vector_efficiency(self):
        ca1 = estimate_cpu(cpu("CA1"), 4, n_snps=8192)
        ca2 = estimate_cpu(cpu("CA2"), 4, n_snps=8192)
        ci2 = estimate_cpu(cpu("CI2"), 4, n_snps=8192)
        ci1 = estimate_cpu(cpu("CI1"), 4, n_snps=8192)
        # The two most efficient per (core x lane): CA1 (narrow vectors) and
        # CI3 (vector POPCNT); CA2 is roughly half of CA1; CI1 > 2x CI2.
        top_two = sorted(
            ["CI1", "CI2", "CI3", "CA1", "CA2"],
            key=lambda k: -estimate_cpu(cpu(k), 4, n_snps=8192).elements_per_cycle_per_core_per_lane,
        )[:2]
        assert set(top_two) == {"CI3", "CA1"}
        assert ca1.elements_per_cycle_per_core_per_lane > 1.5 * ca2.elements_per_cycle_per_core_per_lane
        assert ci1.elements_per_cycle_per_core_per_lane > 2.0 * ci2.elements_per_cycle_per_core_per_lane

    def test_avx512_on_skylake_sp_is_slower_than_avx(self):
        """§V-B: two extracts + frequency drop make AVX-512 lose on CI2."""
        spec = cpu("CI2")
        avx512 = estimate_cpu(spec, 4, n_snps=8192)
        avx256 = estimate_cpu(spec, 4, isa=spec.avx_vector_isa, n_snps=8192)
        assert avx512.giga_elements_per_second_per_core < avx256.giga_elements_per_second_per_core

    def test_approach_ladder_monotone(self):
        spec = cpu("CI3")
        values = [
            estimate_cpu(spec, v, n_snps=2048).elements_per_cycle_per_core
            for v in (1, 2, 3, 4)
        ]
        assert values[0] < values[1] <= values[2] < values[3]
        # §V-A: vectorisation is the big step (7.5x in the paper).
        assert values[3] / values[2] > 5.0

    def test_throughput_grows_with_snps(self):
        spec = cpu("CI3")
        small = estimate_cpu(spec, 4, n_snps=2048).elements_per_second_per_core
        large = estimate_cpu(spec, 4, n_snps=8192).elements_per_second_per_core
        assert large > small

    def test_time_estimate(self):
        est = estimate_cpu(cpu("CI3"), 4, n_snps=1000, n_samples=4000)
        seconds = est.time_seconds(10_000_000)
        assert seconds == pytest.approx(
            10_000_000 * 4000 / est.elements_per_second_total
        )


class TestGpuEstimates:
    def test_figure4b_ranking_follows_popcnt_throughput(self):
        per_cycle = {
            spec.key: estimate_gpu(spec, 4, n_snps=2048).elements_per_cycle_per_cu
            for spec in ALL_GPUS
        }
        assert per_cycle["GN1"] == max(per_cycle.values())
        assert per_cycle["GN1"] > 1.5 * per_cycle["GN2"]
        assert per_cycle["GN2"] == pytest.approx(per_cycle["GN3"], rel=1e-6)
        assert per_cycle["GA1"] > per_cycle["GA3"]
        assert min(per_cycle, key=per_cycle.get) in ("GI1", "GI2")

    def test_figure4a_frequency_separates_equal_popcnt_devices(self):
        gn3 = estimate_gpu(gpu("GN3"), 4, n_snps=2048)
        gn2 = estimate_gpu(gpu("GN2"), 4, n_snps=2048)
        assert gn3.elements_per_second_per_cu > gn2.elements_per_second_per_cu

    def test_figure4c_amd_lower_than_nvidia(self):
        gn3 = estimate_gpu(gpu("GN3"), 4, n_snps=8192)
        ga3 = estimate_gpu(gpu("GA3"), 4, n_snps=8192)
        assert ga3.elements_per_cycle_per_stream_core < gn3.elements_per_cycle_per_stream_core

    def test_overall_throughput_ordering(self):
        """§V-D/§V-E: A100 > MI100; both NVIDIA/AMD flagships > 1 T elements/s."""
        totals = {
            key: estimate_gpu(gpu(key), 4, n_snps=8192).giga_elements_per_second_total
            for key in ("GN3", "GN4", "GA2", "GI2")
        }
        assert totals["GN4"] > totals["GA2"]
        assert totals["GA2"] > 1000
        assert totals["GI2"] < 700

    def test_gpu_approach_ladder(self):
        spec = gpu("GN4")
        totals = [
            estimate_gpu(spec, v, n_snps=8192).elements_per_cycle_per_cu for v in (1, 2, 3, 4)
        ]
        assert totals[0] < totals[2] <= totals[3]
        assert totals[3] > 10 * totals[0]

    def test_bandwidth_starved_gpu_is_memory_bound(self):
        assert estimate_gpu(gpu("GI2"), 4, n_snps=8192).bound == "memory"
        assert estimate_gpu(gpu("GN4"), 4, n_snps=8192).bound == "popcnt"

    def test_invalid_version(self):
        with pytest.raises(ValueError):
            estimate_gpu(gpu("GN1"), approach_version=7)


class TestEfficiencyAndHeterogeneous:
    def test_iris_xe_max_wins_efficiency(self):
        """§V-D: the Iris Xe MAX is the most energy-efficient device."""
        efficiencies = {
            spec.key: energy_efficiency(spec) for spec in list(ALL_CPUS) + list(ALL_GPUS)
        }
        assert max(efficiencies, key=efficiencies.get) == "GI2"
        assert efficiencies["GI2"] > efficiencies["GN3"]

    def test_device_throughput_dispatch(self):
        assert device_throughput(cpu("CI3")) > 0
        assert device_throughput(gpu("GN3")) > device_throughput(cpu("CI3"))

    def test_heterogeneous_sum(self):
        combined = heterogeneous_throughput([cpu("CI3"), gpu("GN1")])
        assert combined < device_throughput(cpu("CI3")) + device_throughput(gpu("GN1"))
        assert combined > device_throughput(gpu("GN1"))

    def test_paper_projection_band(self):
        """Paper: CI3 + Titan Xp projected around 3300 G elements/s."""
        combined = heterogeneous_throughput([cpu("CI3"), gpu("GN1")]) / 1e9
        assert 2000 < combined < 4500

    def test_bad_tdp_rejected(self):
        from dataclasses import replace

        broken = replace(gpu("GI1"), tdp_w=0.0)
        with pytest.raises(ValueError):
            energy_efficiency(broken)
