"""Tests of the EpistasisDetector public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EpistasisDetector
from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.core.contingency import contingency_oracle_many
from repro.core.detector import DetectorConfig
from repro.core.scoring import K2Score
from tests.conftest import PLANTED_TRIPLET


class TestConfig:
    def test_defaults(self):
        cfg = DetectorConfig()
        assert cfg.approach == "cpu-v4"
        assert cfg.order == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(order=1)
        with pytest.raises(ValueError):
            DetectorConfig(order=6)
        assert DetectorConfig(order=2).order == 2
        assert DetectorConfig(order=5).order == 5
        with pytest.raises(ValueError):
            DetectorConfig(n_workers=0)
        with pytest.raises(ValueError):
            DetectorConfig(chunk_size=0)
        with pytest.raises(ValueError):
            DetectorConfig(top_k=0)


class TestLowLevelEntryPoints:
    def test_build_tables_matches_oracle(self, small_dataset):
        detector = EpistasisDetector(approach="cpu-v3", validate=True)
        combos = generate_combinations(small_dataset.n_snps, 3)[:64]
        tables = detector.build_tables(small_dataset, combos)
        oracle = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos
        )
        assert np.array_equal(tables, oracle)

    def test_score_combinations(self, small_dataset):
        detector = EpistasisDetector(approach="cpu-v2")
        combos = generate_combinations(small_dataset.n_snps, 3)[:16]
        scores = detector.score_combinations(small_dataset, combos)
        oracle = contingency_oracle_many(
            small_dataset.genotypes, small_dataset.phenotypes, combos
        )
        assert np.allclose(scores, K2Score().score(oracle))


class TestDetection:
    def test_recovers_planted_interaction(self, planted_dataset):
        result = EpistasisDetector(approach="cpu-v4", top_k=5).detect(planted_dataset)
        assert tuple(sorted(result.best_snps)) == PLANTED_TRIPLET or result.contains(
            PLANTED_TRIPLET
        )

    def test_all_workers_agree(self, small_dataset):
        single = EpistasisDetector(approach="cpu-v4", n_workers=1).detect(small_dataset)
        multi = EpistasisDetector(approach="cpu-v4", n_workers=3, chunk_size=256).detect(
            small_dataset
        )
        assert single.best_snps == multi.best_snps
        assert single.best_score == pytest.approx(multi.best_score)
        assert [i.snps for i in single.top] == [i.snps for i in multi.top]

    @pytest.mark.parametrize("approach", ["cpu-v1", "cpu-v2", "gpu-v3", "gpu-v4"])
    def test_all_approaches_find_same_best(self, small_dataset, approach):
        reference = EpistasisDetector(approach="cpu-v4").detect(small_dataset)
        other = EpistasisDetector(approach=approach).detect(small_dataset)
        assert other.best_snps == reference.best_snps
        assert other.best_score == pytest.approx(reference.best_score)

    def test_objective_selection_changes_scores(self, small_dataset):
        k2 = EpistasisDetector(approach="cpu-v2", objective="k2").detect(small_dataset)
        mi = EpistasisDetector(approach="cpu-v2", objective="mutual-information").detect(
            small_dataset
        )
        assert k2.stats.n_combinations == mi.stats.n_combinations
        assert k2.best_score != pytest.approx(mi.best_score)

    def test_stats_contents(self, small_dataset):
        result = EpistasisDetector(approach="cpu-v4", n_workers=2, chunk_size=512).detect(
            small_dataset
        )
        stats = result.stats
        assert stats.approach == "cpu-v4"
        assert stats.n_combinations == small_dataset.n_combinations(3)
        assert stats.n_samples == small_dataset.n_samples
        assert stats.elapsed_seconds > 0
        assert stats.elements_per_second > 0
        assert stats.n_workers == 2
        assert stats.op_counts.get("VAND", 0) > 0
        assert stats.extra["isa"] == "avx512-vpopcnt"

    def test_validate_mode(self, small_dataset):
        result = EpistasisDetector(approach="cpu-v2", validate=True).detect(small_dataset)
        assert result.best_score == pytest.approx(
            EpistasisDetector(approach="cpu-v2").detect(small_dataset).best_score
        )

    def test_top_k_ordering(self, small_dataset):
        result = EpistasisDetector(approach="cpu-v2", top_k=8).detect(small_dataset)
        scores = [i.score for i in result.top]
        assert scores == sorted(scores)
        assert len(result.top) == 8
        assert result.best == result.top[0]

    def test_custom_approach_instance(self, small_dataset):
        approach = get_approach("cpu-v4", isa="avx2-256")
        result = EpistasisDetector(approach=approach).detect(small_dataset)
        assert result.stats.extra["isa"] == "avx2-256"

    def test_approach_kwargs_forwarded(self, small_dataset):
        result = EpistasisDetector(approach="gpu-v4", block_size=8).detect(small_dataset)
        assert result.stats.extra["block_size"] == 8

    def test_too_few_snps_rejected(self, tiny_dataset):
        detector = EpistasisDetector()
        with pytest.raises(ValueError):
            detector.detect(tiny_dataset.subset_snps([0, 1]))

    def test_dataset_with_exactly_three_snps(self, tiny_dataset):
        ds = tiny_dataset.subset_snps([0, 1, 2])
        result = EpistasisDetector(approach="cpu-v2").detect(ds)
        assert result.best_snps == (0, 1, 2)
        assert result.stats.n_combinations == 1

    def test_small_chunk_size(self, small_dataset):
        result = EpistasisDetector(approach="cpu-v2", chunk_size=7).detect(small_dataset)
        assert result.stats.n_combinations == small_dataset.n_combinations(3)
