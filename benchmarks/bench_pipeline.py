"""Staged-vs-exhaustive benchmark of the search pipeline.

Measures, on a synthetic dataset with a planted third-order interaction,

* the exhaustive ``detect()`` wall time and table count, and
* the staged ``detect_staged()`` (screen order 2 → expand order 3) wall
  time, table count and planted-interaction recall at several retention
  budgets,

and writes ``BENCH_pipeline.json`` at the repository root: the measured
speedup and the evaluated fraction per budget are the acceptance evidence
that staging turns the ``nCr(M, 3)`` wall into a tunable knob.

Run standalone (``PYTHONPATH=src python benchmarks/bench_pipeline.py``) or
through pytest (``pytest benchmarks/bench_pipeline.py``); both paths emit
the artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import EpistasisDetector
from repro.core.combinations import combination_count
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset

#: Planted interaction of the benchmark dataset.
PLANTED = (5, 23, 41)

#: Retention budgets of the staged sweep (SNPs kept by the order-2 screen).
RETENTIONS = (8, 16, 24)

#: Where the artifact lands (the repository root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _bench_dataset():
    return generate_dataset(
        SyntheticConfig(
            n_snps=64,
            n_samples=2048,
            interaction=PlantedInteraction(
                snps=PLANTED, model="threshold", baseline=0.05, effect=0.9
            ),
            seed=41,
        )
    )


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time plus the (identical) last result."""
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def measure_pipeline(repeats: int = 2) -> dict:
    """Time the exhaustive search against staged runs at each retention."""
    dataset = _bench_dataset()
    detector = EpistasisDetector(approach="cpu-v4", order=3, top_k=5)
    exhaustive_tables = combination_count(dataset.n_snps, 3)

    exhaustive_seconds, exhaustive = _timed(
        lambda: detector.detect(dataset), repeats
    )
    exhaustive_best = tuple(sorted(exhaustive.best_snps))

    entries = []
    for keep in RETENTIONS:
        staged_seconds, staged = _timed(
            lambda keep=keep: detector.detect_staged(
                dataset, screen_order=2, keep_snps=keep
            ),
            repeats,
        )
        entries.append(
            {
                "keep_snps": keep,
                "seconds": staged_seconds,
                "speedup_vs_exhaustive": exhaustive_seconds / staged_seconds,
                "screen_tables": combination_count(dataset.n_snps, 2),
                "expand_tables": staged.final_order_evaluated,
                "evaluated_fraction": staged.evaluated_fraction,
                "recall_planted": bool(
                    tuple(sorted(staged.best_snps)) == PLANTED
                ),
                "best_snps": [int(s) for s in staged.best_snps],
            }
        )
    from repro.telemetry import host_metadata

    return {
        "benchmark": "staged_pipeline",
        "host": host_metadata(),
        "n_snps": dataset.n_snps,
        "n_samples": dataset.n_samples,
        "planted": list(PLANTED),
        "exhaustive": {
            "tables": exhaustive_tables,
            "seconds": exhaustive_seconds,
            "best_snps": [int(s) for s in exhaustive.best_snps],
            "recall_planted": bool(exhaustive_best == PLANTED),
        },
        "staged": entries,
    }


def write_artifact(result: dict) -> Path:
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    return ARTIFACT


def test_pipeline_benchmark_emits_artifact():
    """Pytest entry point: run the comparison, emit the JSON, check claims."""
    result = measure_pipeline(repeats=1)
    path = write_artifact(result)
    assert path.exists()
    assert result["exhaustive"]["recall_planted"]
    staged = result["staged"]
    assert len(staged) == len(RETENTIONS)
    # Acceptance: a staged screen->expand run recovers the planted
    # interaction while evaluating < 20% of the exhaustive order-3 tables.
    winning = [
        e for e in staged if e["recall_planted"] and e["evaluated_fraction"] < 0.2
    ]
    assert winning, f"no staged budget recovered {PLANTED} under 20% of tables"
    # The expand cost must grow with the retention budget.
    fractions = [e["evaluated_fraction"] for e in staged]
    assert fractions == sorted(fractions)


if __name__ == "__main__":
    doc = measure_pipeline()
    path = write_artifact(doc)
    print(f"wrote {path}")
    ex = doc["exhaustive"]
    print(
        f"exhaustive: {ex['tables']} tables in {ex['seconds']:.3f} s "
        f"(recall={ex['recall_planted']})"
    )
    for entry in doc["staged"]:
        print(
            f"staged keep={entry['keep_snps']:>3d}: "
            f"{entry['expand_tables']:>6d} order-3 tables "
            f"({entry['evaluated_fraction']:.1%}), "
            f"{entry['seconds']:.3f} s, "
            f"speedup {entry['speedup_vs_exhaustive']:.1f}x, "
            f"recall={entry['recall_planted']}"
        )
