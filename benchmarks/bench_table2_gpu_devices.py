"""Table II — GPU device catalog (POPCNT throughput per compute unit)."""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.tables import format_table2, run_table2


def test_table2_regeneration(benchmark):
    rows = benchmark(run_table2)
    by_key = {r["system"]: r for r in rows}
    assert len(rows) == 9
    # Table II's POPCNT-per-CU column, the key architectural differentiator.
    assert by_key["GN1"]["popcnt_per_cu"] == 32
    assert by_key["GN2"]["popcnt_per_cu"] == 16
    assert by_key["GN4"]["popcnt_per_cu"] == 16
    assert by_key["GA3"]["popcnt_per_cu"] == 10
    assert by_key["GI1"]["popcnt_per_cu"] == 4
    write_artifact("table2_gpu_devices.txt", format_table2())
