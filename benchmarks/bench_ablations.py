"""Ablation benches for the design choices called out in DESIGN.md."""

from __future__ import annotations

from conftest import write_artifact

from repro.experiments.ablations import (
    format_ablations,
    run_blocking_sweep,
    run_coalescing,
    run_isa_sweep,
    run_phenotype_elision,
    run_tiling_sweep,
)


def test_ablation_phenotype_elision(benchmark):
    rows = benchmark(run_phenotype_elision)
    v1, v2 = rows[0], rows[1]
    # §IV-A: the split kernel removes ~1/3 of the traffic and >half the work.
    assert v2["bytes_measured"] < 0.75 * v1["bytes_measured"]
    assert v2["ops_measured"] < 0.75 * v1["ops_measured"]


def test_ablation_blocking_sweep(benchmark):
    rows = benchmark(run_blocking_sweep)
    assert all(r["fits_l1"] for r in rows)
    assert all(r["l1_occupancy_pct"] < 100 for r in rows)


def test_ablation_isa_sweep(benchmark):
    rows = benchmark(run_isa_sweep)
    by = {r["isa"]: r for r in rows}
    # Vector POPCNT is the differentiator: AVX-512 with VPOPCNT is >3x the
    # per-cycle throughput of any scalar-POPCNT variant, and AVX-512 on
    # Skylake-SP (two extracts) is the slowest per lane.
    assert (
        by["avx512-vpopcnt"]["elements_per_cycle_per_core"]
        > 3.0 * by["avx2-256"]["elements_per_cycle_per_core"]
    )
    assert by["avx512-skx"]["per_lane"] < by["avx2-256"]["per_lane"]


def test_ablation_coalescing(benchmark):
    rows = benchmark(run_coalescing)
    by = {r["layout"]: r for r in rows}
    # §IV-B: the transposed/tiled layouts need fewer transactions per warp
    # load than the SNP-major layout.
    assert by["transposed"]["transactions_per_warp_load"] < by["snp-major"]["transactions_per_warp_load"]
    assert by["tiled"]["transactions_per_warp_load"] <= by["snp-major"]["transactions_per_warp_load"]


def test_ablation_tiling_sweep(benchmark):
    rows = benchmark(run_tiling_sweep)
    totals = [r["total_gelements_per_s"] for r in rows]
    # The approach ladder is monotone: every optimisation helps (V1 < V2 <= V3 <= V4).
    assert totals[0] < totals[2] <= totals[3]
    assert totals[3] > 10 * totals[0]


def test_ablation_artifact(benchmark):
    content = benchmark.pedantic(format_ablations, rounds=1, iterations=1)
    write_artifact("ablations.txt", content)
