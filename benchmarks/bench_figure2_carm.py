"""Figure 2 — CARM characterisation of the CPU and GPU approaches.

The artefact contains both panels (CI3 and GI2) as tables, ASCII charts and
CSV blocks.  The benchmark timings cover (a) the analytical characterisation
itself and (b) the functional measurement of the arithmetic intensity on a
benchmark-scale dataset, which must agree with the analytical counters.
"""

from __future__ import annotations

import pytest
from conftest import write_artifact

from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.carm.characterize import characterize_cpu_approaches, characterize_gpu_approaches
from repro.devices import cpu, gpu
from repro.experiments.figure2 import format_figure2, run_figure2
from repro.perfmodel.counters import approach_counts


def test_figure2_regeneration(benchmark):
    rows = benchmark(lambda: run_figure2("CI3") + run_figure2("GI2"))
    assert {r["approach"] for r in rows} == {"V1", "V2", "V3", "V4"}
    cpu_rows = {r["approach"]: r for r in rows if r["device"] == "CI3"}
    gpu_rows = {r["approach"]: r for r in rows if r["device"] == "GI2"}
    # Paper, Figure 2a: V2 has lower AI than V1; V4 reaches the vector peak
    # region; V4 is the fastest by a wide margin.
    assert cpu_rows["V2"]["arithmetic_intensity"] < cpu_rows["V1"]["arithmetic_intensity"]
    assert cpu_rows["V4"]["gelements_per_s"] > 5 * cpu_rows["V3"]["gelements_per_s"]
    assert cpu_rows["V4"]["bound_by"] == "Int32 Vector ADD Peak"
    # Paper, Figure 2b: V1/V2 are DRAM bound; V3 (coalescing) is the big jump.
    assert gpu_rows["V1"]["bound_by"] == "DRAM->C"
    assert gpu_rows["V2"]["bound_by"] == "DRAM->C"
    assert gpu_rows["V3"]["gelements_per_s"] > 10 * gpu_rows["V2"]["gelements_per_s"]
    write_artifact("figure2_carm.txt", format_figure2())


def test_figure2_cpu_characterization_benchmark(benchmark):
    model, points = benchmark(characterize_cpu_approaches, cpu("CI3"))
    assert len(points) == 4


def test_figure2_gpu_characterization_benchmark(benchmark):
    model, points = benchmark(characterize_gpu_approaches, gpu("GI2"))
    assert len(points) == 4


@pytest.mark.parametrize("name,version", [("cpu-v1", 1), ("cpu-v2", 2)])
def test_figure2_measured_arithmetic_intensity(benchmark, bench_dataset, name, version):
    """The AI measured from the functional kernel matches the model counters."""
    approach = get_approach(name)
    encoded = approach.prepare(bench_dataset)
    combos = generate_combinations(bench_dataset.n_snps, 3)[:512]

    def run():
        approach.reset_counter()
        approach.build_tables(encoded, combos)
        return approach.counter

    counter = benchmark(run)
    expected = approach_counts(version, "cpu").arithmetic_intensity
    measured = counter.arithmetic_intensity
    assert measured == pytest.approx(expected, rel=0.35)
