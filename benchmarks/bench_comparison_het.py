"""§V-D — CPU vs GPU comparison, heterogeneous projection, energy efficiency."""

from __future__ import annotations

from conftest import write_artifact

from repro.devices import cpu, gpu
from repro.experiments.comparison import (
    format_comparison,
    run_device_comparison,
    run_heterogeneous,
)
from repro.perfmodel import energy_efficiency


def test_comparison_regeneration(benchmark):
    rows = benchmark(run_device_comparison)
    by = {r["device"]: r for r in rows}
    # §V-D: NVIDIA/AMD discrete GPUs deliver >1000 G elements/s; the best CPU
    # (Ice Lake SP) reaches roughly half of the Titan RTX.
    assert by["GN3"]["total_gelements_per_s"] > 1000
    assert by["GA2"]["total_gelements_per_s"] > 1000
    assert 0.3 < by["CI3"]["total_gelements_per_s"] / by["GN3"]["total_gelements_per_s"] < 0.8
    # Energy efficiency: the Intel Iris Xe MAX wins despite its modest speed.
    best_efficiency = max(rows, key=lambda r: r["gelements_per_joule"])
    assert best_efficiency["device"] == "GI2"
    assert by["GI2"]["gelements_per_joule"] > by["GN3"]["gelements_per_joule"]
    write_artifact("comparison_vd.txt", format_comparison())


def test_heterogeneous_projection(benchmark):
    rows = benchmark(run_heterogeneous)
    by = {(r["cpu"], r["gpu"]): r for r in rows}
    ci3_gn1 = by[("CI3", "GN1")]
    # The paper projects ~3300 G elements/s for Ice Lake SP + Titan Xp; the
    # reproduction should land in the same band and, crucially, show the CPU
    # contributing a sizeable share only for the fast CPUs.
    assert 2000 < ci3_gn1["combined_gelements_per_s"] < 4500
    assert ci3_gn1["cpu_contribution_pct"] > 20
    assert by[("CI1", "GN3")]["cpu_contribution_pct"] < 5


def test_energy_efficiency_benchmark(benchmark):
    value = benchmark(energy_efficiency, gpu("GI2"))
    assert value > energy_efficiency(gpu("GN3"))
