"""Figure 4 — GPU evaluation (per-CU / per-cycle / per-stream-core throughput).

The artefact is the model-generated figure for all 8 GPUs and three dataset
sizes.  The benchmark timings measure the functional GPU approaches (batched
layout kernels) and one launch of the per-thread GPU simulator.
"""

from __future__ import annotations

import pytest
from conftest import write_artifact

from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.datasets.binarization import PhenotypeSplitDataset
from repro.devices import gpu
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.gpusim import NDRange, SimulatedGpu, epistasis_kernel_split, make_split_kernel_args


def test_figure4_regeneration(benchmark):
    rows = benchmark(run_figure4)
    by = {(r["device"], r["n_snps"]): r for r in rows}
    # Figure 4a/4b: Titan Xp (32 POPCNT/CU) has the highest per-CU figures.
    for key in ("GN2", "GN3", "GN4", "GA1", "GA2", "GA3", "GI1", "GI2"):
        assert (
            by[("GN1", 2048)]["elements_per_cycle_per_cu"]
            >= by[(key, 2048)]["elements_per_cycle_per_cu"]
        )
    # GN1 is about 2x GN2 per CU and per cycle (same ratio as their POPCNT/CU).
    ratio = (
        by[("GN1", 2048)]["elements_per_cycle_per_cu"]
        / by[("GN2", 2048)]["elements_per_cycle_per_cu"]
    )
    assert 1.6 < ratio < 2.4
    # Figure 4c: AMD GPUs have lower per-stream-core occupancy than NVIDIA.
    assert (
        by[("GA3", 8192)]["elements_per_cycle_per_stream_core"]
        < by[("GN3", 8192)]["elements_per_cycle_per_stream_core"]
    )
    # Whole-device ordering of §V-D: only the A100 beats the MI100.
    totals = {k: by[(k, 8192)]["total_gelements_per_s"] for k in ("GN3", "GN4", "GA2")}
    assert totals["GN4"] > totals["GA2"] > 0.8 * totals["GN3"]
    write_artifact("figure4_gpu.txt", format_figure4())


@pytest.mark.parametrize("name", ["gpu-v1", "gpu-v2", "gpu-v3", "gpu-v4"])
def test_figure4_functional_kernel_throughput(benchmark, bench_dataset, name):
    """Measured table-construction throughput of each GPU approach."""
    approach = get_approach(name)
    encoded = approach.prepare(bench_dataset)
    combos = generate_combinations(bench_dataset.n_snps, 3)[:2048]

    tables = benchmark(approach.build_tables, encoded, combos)
    assert tables.shape == (2048, 27, 2)


def test_figure4_simulator_launch(benchmark, small_dataset):
    """One simulated launch of Algorithm 2 on the tiled layout (A100 model)."""
    split = PhenotypeSplitDataset.from_dataset(small_dataset.subset_snps(range(12)))
    args = make_split_kernel_args(split, layout="tiled", block_size=4)
    kernel = epistasis_kernel_split(args)
    sim = SimulatedGpu(gpu("GN4"))

    def launch():
        return sim.launch(kernel, NDRange((12, 12, 12), subgroup_size=32))

    results, stats = benchmark(launch)
    assert stats.n_active_threads == 220  # C(12, 3)
    assert stats.transactions_per_warp_load >= 1.0
