"""Process-scaling benchmark of the sharded distributed executor.

Measures, on a synthetic dataset with a planted third-order interaction,
the sharded sweep (``repro.distributed``) at 1, 2 and 4 worker processes —
tables/s, speedup over one worker and merge bit-identity — next to the
modelled multi-process scaling curve
(:func:`repro.perfmodel.distributed.estimate_distributed_run`: per-worker
throughput, broadcast/gather traffic, per-shard imbalance), and writes
``BENCH_distributed.json`` at the repository root.

On a many-core host the measured curve should track the modelled one; on a
constrained single-core CI runner the *determinism* columns are the real
acceptance evidence (every worker count merges to the identical top-k),
with the model documenting what the scaling would be.

Run standalone (``PYTHONPATH=src python benchmarks/bench_distributed.py``)
or through pytest (``pytest benchmarks/bench_distributed.py``); both paths
emit the artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.combinations import combination_count
from repro.core.detector import DetectorConfig
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.distributed import run_distributed
from repro.engine import DenseRangeSource
from repro.perfmodel.distributed import estimate_distributed_run

#: Planted interaction of the benchmark dataset.
PLANTED = (5, 23, 41)

#: Worker process counts of the scaling sweep.
WORKER_COUNTS = (1, 2, 4)

#: Where the artifact lands (the repository root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"


def _bench_dataset():
    return generate_dataset(
        SyntheticConfig(
            n_snps=48,
            n_samples=1024,
            interaction=PlantedInteraction(
                snps=PLANTED, model="threshold", baseline=0.05, effect=0.9
            ),
            seed=42,
        )
    )


def measure_distributed() -> dict:
    """Run the sharded sweep at each worker count and compare the merges."""
    dataset = _bench_dataset()
    config = DetectorConfig(approach="cpu-v4", order=3, top_k=5)
    source = DenseRangeSource(dataset.n_snps, 3)
    total = combination_count(dataset.n_snps, 3)

    runs = []
    reference_top = None
    for workers in WORKER_COUNTS:
        outcome = run_distributed(
            dataset, source, config=config, workers=workers
        )
        top = [
            {"snps": list(i.snps), "score": float(i.score)}
            for i in outcome.result.top
        ]
        if reference_top is None:
            reference_top = top
        modelled = estimate_distributed_run(
            n_candidates=total,
            n_samples=dataset.n_samples,
            n_snps=dataset.n_snps,
            order=3,
            n_workers=workers,
            n_shards=outcome.n_shards,
            dataset_bytes=dataset.genotypes.nbytes + dataset.phenotypes.nbytes,
            top_k=config.top_k,
        )
        runs.append(
            {
                "workers": workers,
                "n_shards": outcome.n_shards,
                "elapsed_seconds": outcome.elapsed_seconds,
                "tables_per_second": total / outcome.elapsed_seconds,
                "speedup_vs_1": runs[0]["elapsed_seconds"] / outcome.elapsed_seconds
                if runs
                else 1.0,
                "top_identical_to_workers_1": top == reference_top,
                "best_snps": top[0]["snps"],
                "modelled": {
                    "speedup_vs_single": modelled["speedup_vs_single"],
                    "parallel_efficiency": modelled["parallel_efficiency"],
                    "imbalance": modelled["imbalance"],
                    "broadcast_seconds": modelled["broadcast_seconds"],
                    "gather_seconds": modelled["gather_seconds"],
                },
            }
        )
    return {
        "dataset": {
            "n_snps": dataset.n_snps,
            "n_samples": dataset.n_samples,
            "planted": list(PLANTED),
        },
        "total_tables": total,
        "host_cpus": os.cpu_count(),
        "runs": runs,
    }


def write_artifact(doc: dict) -> Path:
    ARTIFACT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return ARTIFACT


def test_distributed_benchmark_emits_artifact():
    """Pytest entry point: run the scaling sweep, emit JSON, check claims."""
    doc = measure_distributed()
    path = write_artifact(doc)
    assert path.exists()
    runs = doc["runs"]
    assert [r["workers"] for r in runs] == list(WORKER_COUNTS)
    # Acceptance: every worker count merges to the identical top-k and
    # recovers the planted interaction.
    assert all(r["top_identical_to_workers_1"] for r in runs)
    assert all(sorted(r["best_snps"]) == list(PLANTED) for r in runs)
    # The model must predict non-degrading scaling for this compute-bound
    # shape (the measured curve depends on the host's core count).
    modelled = [r["modelled"]["speedup_vs_single"] for r in runs]
    assert modelled == sorted(modelled)


if __name__ == "__main__":
    doc = measure_distributed()
    path = write_artifact(doc)
    print(f"wrote {path}")
    for run in doc["runs"]:
        print(
            f"workers={run['workers']}: {run['elapsed_seconds']:.3f} s, "
            f"{run['tables_per_second']:.0f} tables/s, "
            f"speedup {run['speedup_vs_1']:.2f}x "
            f"(modelled {run['modelled']['speedup_vs_single']:.2f}x), "
            f"identical={run['top_identical_to_workers_1']}"
        )
