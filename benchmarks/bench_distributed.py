"""Process-scaling benchmark of the sharded distributed executor.

Measures, on a synthetic dataset with a planted third-order interaction,
the sharded sweep (``repro.distributed``) at 1, 2 and 4 worker processes.
Every worker count is measured twice on the warm fleet (``pool="keep"``,
shared-memory data plane on):

* **cold** — first contact: the fleet spawns, the coordinator publishes
  the dataset and the prepared encoding into shared memory, workers attach
  and hydrate their execution state;
* **warm** — the steady state a long session actually lives in: processes
  up, segments reused, worker contexts cached.  Speedup is computed from
  the warm runs (that is the cost model users pay per call), with the cold
  run recorded next to it so the amortised startup is visible.

The per-run ``data_plane`` counters are part of the artifact; the warm
runs must show **zero re-packs** — no ``encoding_cache_misses``, no
``dataset_pickled``/``dataset_unpickled`` — or the shared-memory tier is
not doing its job.

On a many-core host the measured curve should track the modelled one
(:func:`repro.perfmodel.distributed.estimate_distributed_run`, now
including spawn and attach terms); worker counts above ``os.cpu_count()``
are flagged ``"oversubscribed": true`` and their timings are reported but
never gated — a 4-worker run on a 1-core CI box measures context
switching, not scaling.

The artifact also carries a **fault-recovery** section
(:func:`measure_fault_recovery`): the measured cost of recovering from one
seeded worker crash (pool respawn + shard retry, next to the modelled
:func:`~repro.perfmodel.distributed.estimate_recovery_seconds`) and the
fault-free overhead of arming the heartbeat watchdog, which must stay
negligible — detection is passive, so resilience costs nothing until a
fault actually happens.

``--check`` runs a small sweep and gates on the structural claims
(deterministic merge at every worker count — including the crash and
watchdog runs — zero warm re-packs, watchdog overhead above
:data:`WATCHDOG_OVERHEAD_FLOOR`) plus — on hosts with at least 2 CPUs —
the 2-worker warm speedup floor.

Run standalone (``PYTHONPATH=src python benchmarks/bench_distributed.py``)
or through pytest (``pytest benchmarks/bench_distributed.py``); both paths
emit the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from repro.core.combinations import combination_count
from repro.core.detector import DetectorConfig
from repro.datasets import PlantedInteraction, SyntheticConfig, generate_dataset
from repro.distributed import RetryPolicy, run_distributed, shutdown_fleets
from repro.perfmodel.distributed import (
    estimate_distributed_run,
    estimate_recovery_seconds,
)

#: Planted interaction of the benchmark dataset.
PLANTED = (5, 23, 41)

#: Worker process counts of the scaling sweep (the quick/--check sweep
#: stops at 2 — enough to exercise every data-plane path).
WORKER_COUNTS = (1, 2, 4)
QUICK_WORKER_COUNTS = (1, 2)

#: Where the artifact lands (the repository root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_distributed.json"

#: ``--check``: minimum 2-worker warm speedup on a host with >= 2 CPUs.
SPEEDUP_FLOOR = 1.4

#: ``--check``: allowed warm-speedup shortfall vs the committed artifact.
CHECK_TOLERANCE = 0.30

#: Warm data-plane counters that must stay at zero: any of these firing on
#: a warm run means arrays were re-packed or re-shipped instead of reused.
REPACK_COUNTERS = ("encoding_cache_misses", "dataset_pickled", "dataset_unpickled")

#: ``--check``: minimum fault-free throughput ratio of a run with the
#: heartbeat watchdog armed vs the same run without it.  Passive detection
#: (the pool break surfaces failures; the watchdog only bounds waits) must
#: cost essentially nothing when no fault fires.
WATCHDOG_OVERHEAD_FLOOR = 0.95


def _bench_dataset(quick: bool = False):
    return generate_dataset(
        SyntheticConfig(
            n_snps=48 if quick else 64,
            n_samples=1024,
            interaction=PlantedInteraction(
                snps=PLANTED, model="threshold", baseline=0.05, effect=0.9
            ),
            seed=42,
        )
    )


def repack_events(data_plane: dict) -> dict:
    """The re-pack/re-ship counters that fired (empty == zero re-packs)."""
    return {
        name: int(data_plane.get(name, 0))
        for name in REPACK_COUNTERS
        if data_plane.get(name, 0)
    }


def measure_distributed(quick: bool = False) -> dict:
    """Run the cold/warm scaling sweep and assemble the artifact document."""
    from repro.engine import DenseRangeSource

    dataset = _bench_dataset(quick)
    config = DetectorConfig(approach="cpu-v4", order=3, top_k=5)
    source = DenseRangeSource(dataset.n_snps, 3)
    total = combination_count(dataset.n_snps, 3)
    host_cpus = os.cpu_count() or 1
    counts = QUICK_WORKER_COUNTS if quick else WORKER_COUNTS

    runs = []
    reference_top = None
    warm_baseline = None
    try:
        for workers in counts:
            outcomes = []
            for _ in range(2):  # cold, then warm on the same fleet
                outcomes.append(
                    run_distributed(
                        dataset, source, config=config, workers=workers,
                        pool="keep", shm="auto",
                    )
                )
            cold, warm = outcomes
            top = [
                {"snps": list(i.snps), "score": float(i.score)}
                for i in warm.result.top
            ]
            if reference_top is None:
                reference_top = top
            if warm_baseline is None:
                warm_baseline = warm.elapsed_seconds
            oversubscribed = workers > host_cpus
            if oversubscribed:
                print(
                    f"warning: {workers} workers on a {host_cpus}-CPU host — "
                    "oversubscribed, timing measures contention not scaling"
                )
            model_shape = dict(
                n_candidates=total,
                n_samples=dataset.n_samples,
                n_snps=dataset.n_snps,
                order=3,
                n_workers=workers,
                n_shards=warm.n_shards,
                dataset_bytes=dataset.genotypes.nbytes + dataset.phenotypes.nbytes,
                top_k=config.top_k,
            )
            # Warm steady state: fleet up, worker contexts hydrated,
            # segments reused — no spawn, no attach (what speedup_vs_1
            # measures).  The cold estimate prices the per-run startup a
            # fresh pool would pay every call.
            modelled = estimate_distributed_run(
                **model_shape, pool="keep", shm=True, attach_seconds=0.0
            )
            modelled_cold = estimate_distributed_run(
                **model_shape, pool="fresh", shm=True
            )
            runs.append(
                {
                    "workers": workers,
                    "oversubscribed": oversubscribed,
                    "n_shards": warm.n_shards,
                    "cold_seconds": cold.elapsed_seconds,
                    "warm_seconds": warm.elapsed_seconds,
                    "tables_per_second": total / warm.elapsed_seconds,
                    "speedup_vs_1": warm_baseline / warm.elapsed_seconds,
                    "top_identical_to_workers_1": top == reference_top,
                    "best_snps": top[0]["snps"],
                    "data_plane_cold": dict(cold.data_plane),
                    "data_plane_warm": dict(warm.data_plane),
                    "warm_repacks": repack_events(warm.data_plane),
                    "modelled": {
                        "speedup_vs_single": modelled["speedup_vs_single"],
                        "parallel_efficiency": modelled["parallel_efficiency"],
                        "imbalance": modelled["imbalance"],
                        "broadcast_seconds": modelled["broadcast_seconds"],
                        "gather_seconds": modelled["gather_seconds"],
                        "cold_spawn_seconds": modelled_cold["spawn_seconds"],
                        "cold_attach_seconds": modelled_cold["attach_seconds"],
                        "cold_estimated_seconds": modelled_cold[
                            "estimated_seconds"
                        ],
                    },
                }
            )
    finally:
        shutdown_fleets()
    from repro.telemetry import host_metadata

    return {
        "benchmark": "distributed",
        "quick": bool(quick),
        "dataset": {
            "n_snps": dataset.n_snps,
            "n_samples": dataset.n_samples,
            "planted": list(PLANTED),
        },
        "total_tables": total,
        "host_cpus": host_cpus,
        "host": host_metadata(),
        "pool": "keep",
        "shm": True,
        "runs": runs,
        "fault_recovery": measure_fault_recovery(quick),
    }


def measure_fault_recovery(quick: bool = False) -> dict:
    """Measure the overhead of fault recovery and of the armed watchdog.

    Three 2-worker runs on dedicated fresh pools (fault handling must not
    inherit a warm fleet's hydrated state to be honestly priced):

    * **fault-free** — the reference wall-clock;
    * **watchdog armed** — same run with a ``shard_deadline_seconds``; no
      fault fires, so any slowdown is pure detection overhead (the
      ``--check`` gate holds it above :data:`WATCHDOG_OVERHEAD_FLOOR`);
    * **one crash** — a seeded ``shard.run:crash`` SIGKILLs a worker; the
      recovery cost (pool respawn + shard retry) is the measured delta,
      reported next to :func:`estimate_recovery_seconds`'s modelled figure.

    Every run must merge bit-identically to the fault-free one.
    """
    from repro.engine import DenseRangeSource

    dataset = _bench_dataset(quick)
    config = DetectorConfig(approach="cpu-v4", order=3, top_k=5)
    source = DenseRangeSource(dataset.n_snps, 3)
    retry = RetryPolicy(backoff_seconds=0.01)

    def run(**kwargs):
        return run_distributed(
            dataset, source, config=config, workers=2, pool="fresh",
            shm="auto", **kwargs,
        )

    clean = run()
    watchdog = run(retry=RetryPolicy(backoff_seconds=0.01,
                                     shard_deadline_seconds=30.0))
    crashed = run(faults="shard.run:crash", retry=retry)

    reference = [(list(i.snps), float(i.score)) for i in clean.result.top]
    shard_seconds = clean.elapsed_seconds / max(1, clean.n_shards) * 2
    modelled = estimate_recovery_seconds(1, shard_seconds, 2)
    return {
        "workers": 2,
        "pool": "fresh",
        "fault_free_seconds": clean.elapsed_seconds,
        "watchdog_seconds": watchdog.elapsed_seconds,
        "watchdog_throughput_ratio": (
            clean.elapsed_seconds / watchdog.elapsed_seconds
        ),
        "watchdog_faulted": watchdog.resilience.get("retries", 0) > 0,
        "crash_seconds": crashed.elapsed_seconds,
        "crash_recovery_seconds": max(
            0.0, crashed.elapsed_seconds - clean.elapsed_seconds
        ),
        "crash_resilience": dict(crashed.resilience),
        "modelled_recovery_seconds": modelled,
        "watchdog_identical": (
            [(list(i.snps), float(i.score)) for i in watchdog.result.top]
            == reference
        ),
        "crash_identical": (
            [(list(i.snps), float(i.score)) for i in crashed.result.top]
            == reference
        ),
    }


def write_artifact(doc: dict) -> Path:
    ARTIFACT.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return ARTIFACT


def check_against_baseline(doc: dict, baseline_path: Path) -> int:
    """Gate on the structural claims of the distributed data plane.

    Always enforced: the merge is bit-identical at every worker count, the
    planted interaction is recovered, and warm runs re-pack nothing.  On a
    host with >= 2 CPUs the 2-worker warm speedup must clear
    :data:`SPEEDUP_FLOOR` (and stay within :data:`CHECK_TOLERANCE` of the
    committed artifact's, when one exists for a comparable host).
    Oversubscribed runs are exempt from every timing gate.
    """
    failures = []
    for run in doc["runs"]:
        if not run["top_identical_to_workers_1"]:
            failures.append(f"workers={run['workers']}: merge not bit-identical")
        if sorted(run["best_snps"]) != list(PLANTED):
            failures.append(
                f"workers={run['workers']}: planted interaction not recovered "
                f"(got {run['best_snps']})"
            )
        if run["warm_repacks"]:
            failures.append(
                f"workers={run['workers']}: warm run re-packed data "
                f"{run['warm_repacks']}"
            )

    recovery = doc.get("fault_recovery") or {}
    if recovery:
        if not recovery["crash_identical"]:
            failures.append("crash recovery: merge not bit-identical")
        if not recovery["watchdog_identical"]:
            failures.append("watchdog run: merge not bit-identical")
        if recovery["crash_resilience"].get("retries", 0) < 1:
            failures.append(
                "crash recovery: the injected crash caused no retry "
                f"({recovery['crash_resilience']})"
            )
        oversubscribed = (os.cpu_count() or 1) < 2
        ratio = recovery["watchdog_throughput_ratio"]
        if not oversubscribed and ratio < WATCHDOG_OVERHEAD_FLOOR:
            failures.append(
                f"armed watchdog costs too much on a fault-free run: "
                f"{ratio:.2f}x < {WATCHDOG_OVERHEAD_FLOOR:.2f}x"
            )

    host_cpus = int(doc.get("host_cpus") or 1)
    two = next((r for r in doc["runs"] if r["workers"] == 2), None)
    if two is not None and host_cpus >= 2 and not two["oversubscribed"]:
        speedup = two["speedup_vs_1"]
        floor = SPEEDUP_FLOOR
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
            base_two = next(
                (
                    r
                    for r in baseline.get("runs", [])
                    if r["workers"] == 2 and not r.get("oversubscribed")
                ),
                None,
            )
            if base_two is not None:
                floor = max(
                    floor, base_two["speedup_vs_1"] * (1.0 - CHECK_TOLERANCE)
                )
        if speedup < floor:
            failures.append(
                f"2-worker warm speedup {speedup:.2f}x below {floor:.2f}x "
                f"({host_cpus}-CPU host)"
            )
    elif two is not None:
        print(
            f"host has {host_cpus} CPU(s): speedup gate skipped "
            f"(2-worker warm speedup measured {two['speedup_vs_1']:.2f}x)"
        )

    if failures:
        print("distributed benchmark check failed:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"distributed check OK ({len(doc['runs'])} worker counts, "
        "deterministic merge, zero warm re-packs)"
    )
    return 0


def test_distributed_benchmark_emits_artifact():
    """Pytest entry point: run the scaling sweep, emit JSON, check claims."""
    doc = measure_distributed(quick=True)
    runs = doc["runs"]
    assert [r["workers"] for r in runs] == list(QUICK_WORKER_COUNTS)
    # Acceptance: every worker count merges to the identical top-k,
    # recovers the planted interaction, and warm runs re-pack nothing.
    assert check_against_baseline(doc, ARTIFACT) == 0
    # The model must predict non-degrading scaling for this compute-bound
    # shape (the measured curve depends on the host's core count).
    modelled = [r["modelled"]["speedup_vs_single"] for r in runs]
    assert modelled == sorted(modelled)
    # The shared-memory data plane must actually carry the arrays: the cold
    # multi-process run publishes segments and every worker attaches.
    multi = next(r for r in runs if r["workers"] > 1)
    assert multi["data_plane_cold"].get("segments_published", 0) >= 1
    assert multi["data_plane_cold"].get("dataset_shm_attached", 0) >= 1
    # Fault recovery: the injected crash retried and recovered to the
    # identical merge (timing gates live in check_against_baseline).
    recovery = doc["fault_recovery"]
    assert recovery["crash_identical"] and recovery["watchdog_identical"]
    assert recovery["crash_resilience"]["retries"] >= 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI-sized sweep (printed, not written to the artifact)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the quick sweep and gate on the structural claims "
        "(deterministic merge, zero warm re-packs, and the 2-worker warm "
        "speedup floor on multi-CPU hosts); does not overwrite the artifact",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_against_baseline(measure_distributed(quick=True), ARTIFACT)
    doc = measure_distributed(quick=args.quick)
    if args.quick:
        print(json.dumps(doc["dataset"]))
    else:
        print(f"wrote {write_artifact(doc)}")
    for run in doc["runs"]:
        note = " OVERSUBSCRIBED" if run["oversubscribed"] else ""
        print(
            f"workers={run['workers']}: cold {run['cold_seconds']:.3f} s, "
            f"warm {run['warm_seconds']:.3f} s, "
            f"{run['tables_per_second']:.0f} tables/s, "
            f"speedup {run['speedup_vs_1']:.2f}x "
            f"(modelled {run['modelled']['speedup_vs_single']:.2f}x), "
            f"identical={run['top_identical_to_workers_1']}{note}"
        )
    recovery = doc["fault_recovery"]
    print(
        f"fault recovery: fault-free {recovery['fault_free_seconds']:.3f} s, "
        f"watchdog armed {recovery['watchdog_seconds']:.3f} s "
        f"({recovery['watchdog_throughput_ratio']:.2f}x), one crash "
        f"{recovery['crash_seconds']:.3f} s "
        f"(+{recovery['crash_recovery_seconds']:.3f} s recovery, modelled "
        f"+{recovery['modelled_recovery_seconds']:.3f} s), "
        f"identical={recovery['crash_identical']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
