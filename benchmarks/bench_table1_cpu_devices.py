"""Table I — CPU device catalog (and the <BS, BP> derivation it implies).

The pytest-benchmark timing covers the blocking-parameter derivation for the
whole catalog; the artefact is the regenerated Table I.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.devices.catalog import ALL_CPUS
from repro.experiments.tables import format_table1, run_table1


def test_table1_regeneration(benchmark):
    rows = benchmark(run_table1)
    assert [r["system"] for r in rows] == ["CI1", "CI2", "CI3", "CA1", "CA2"]
    # The paper's blocking configuration: <5, 400> on Ice Lake SP, <5, 96> elsewhere.
    by_key = {r["system"]: r for r in rows}
    assert (by_key["CI3"]["blocking_bs"], by_key["CI3"]["blocking_bp"]) == (5, 400)
    for key in ("CI1", "CI2", "CA1", "CA2"):
        assert (by_key[key]["blocking_bs"], by_key[key]["blocking_bp"]) == (5, 96)
    write_artifact("table1_cpu_devices.txt", format_table1())


def test_table1_blocking_benchmark(benchmark):
    def derive_all():
        return [spec.blocking_parameters() for spec in ALL_CPUS]

    results = benchmark(derive_all)
    assert len(results) == len(ALL_CPUS)
