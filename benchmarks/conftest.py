"""Shared fixtures of the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
figure-scale numbers come from the analytical models (instant); the
``pytest-benchmark`` timings exercise the *functional* kernels on
benchmark-scale datasets so that the optimisation story can also be verified
with measured wall-clock throughput.  All regenerated artefacts are written
to ``benchmarks/output/`` and echoed to stdout.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datasets import SyntheticConfig, generate_dataset

#: Where regenerated tables/figures are written.
OUTPUT_DIR = Path(__file__).parent / "output"


def write_artifact(name: str, content: str) -> Path:
    """Persist a regenerated table/figure and echo it."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    print(f"\n[artifact] {path}\n{content}\n")
    return path


@pytest.fixture(scope="session")
def bench_dataset():
    """Benchmark-scale dataset: 64 SNPs x 4096 samples (41664 triplets)."""
    return generate_dataset(SyntheticConfig(n_snps=64, n_samples=4096, seed=123))


@pytest.fixture(scope="session")
def small_dataset():
    """Small dataset for the slower (simulated / naïve) paths."""
    return generate_dataset(SyntheticConfig(n_snps=32, n_samples=1024, seed=321))
