"""Figure 3 — CPU evaluation (per-core / per-cycle / per-lane throughput).

The artefact is the full model-generated figure (all devices, ISAs and
dataset sizes).  The benchmark timings measure the functional CPU kernels —
the approach ladder V1 -> V4 and the thread-pool scaling of the detector —
on a benchmark-scale dataset.
"""

from __future__ import annotations

import pytest
from conftest import write_artifact

from repro.core import EpistasisDetector
from repro.core.approaches import get_approach
from repro.core.combinations import generate_combinations
from repro.devices import cpu
from repro.experiments.figure3 import format_figure3, run_figure3


def test_figure3_regeneration(benchmark):
    rows = benchmark(run_figure3)
    by = {(r["device"], r["isa"], r["n_snps"]): r for r in rows}
    # Figure 3a: at 8192 SNPs the AVX-512 Ice Lake SP is the clear winner.
    ci3 = by[("CI3", "avx512-vpopcnt", 8192)]
    for key in ("CI1", "CA1", "CA2"):
        other = by[(key, cpu(key).isa, 8192)]
        assert ci3["gelements_per_s_per_core"] > 2.0 * other["gelements_per_s_per_core"]
    # Figure 3b: all AVX (scalar-POPCNT) machines land close together per cycle.
    avx_vals = [
        by[("CI1", "avx2-256", 8192)]["elements_per_cycle_per_core"],
        by[("CA2", "avx2-256", 8192)]["elements_per_cycle_per_core"],
        by[("CA1", "avx-128", 8192)]["elements_per_cycle_per_core"],
    ]
    assert max(avx_vals) / min(avx_vals) < 1.6
    # Figure 3c: CI1 beats AVX-512 Skylake-SP by >2x per (core x width).
    assert (
        by[("CI1", "avx2-256", 8192)]["elements_per_cycle_per_core_per_lane"]
        > 2.0 * by[("CI2", "avx512-skx", 8192)]["elements_per_cycle_per_core_per_lane"]
    )
    write_artifact("figure3_cpu.txt", format_figure3())


@pytest.mark.parametrize("name", ["cpu-v1", "cpu-v2", "cpu-v3", "cpu-v4"])
def test_figure3_functional_kernel_throughput(benchmark, bench_dataset, name):
    """Measured table-construction throughput of each CPU approach."""
    approach = get_approach(name)
    encoded = approach.prepare(bench_dataset)
    combos = generate_combinations(bench_dataset.n_snps, 3)[:2048]

    tables = benchmark(approach.build_tables, encoded, combos)
    assert tables.shape == (2048, 27, 2)
    assert int(tables[0].sum()) == bench_dataset.n_samples


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_figure3_detector_thread_scaling(benchmark, small_dataset, workers):
    """End-to-end exhaustive search with the paper's dynamic thread pool."""
    detector = EpistasisDetector(approach="cpu-v4", n_workers=workers, chunk_size=1024)
    result = benchmark(detector.detect, small_dataset)
    assert result.stats.n_combinations == small_dataset.n_combinations(3)
