"""Backend benchmark: measured kernel throughput per execution backend.

Measures the real-hardware backend plane end to end and records the
numbers into ``BENCH_backends.json``:

* ``probes`` — calibration-probe combos/s (and paper elements/s) per
  backend x kernel family (naive / split, each unfused and fused) x
  interaction order x word layout, plus the probe cost itself (the wall
  time of calibrating, including the JIT / module-build warm-up the probe
  deliberately absorbs);
* ``end_to_end`` — full ``detect()`` throughput at the paper's ``k = 3``
  per available CPU backend, unfused and with the fused build+score path,
  with the numba-vs-numpy speedup the acceptance gate reads;
* ``carm_split`` — the heterogeneous CARM cpu+gpu share computed twice,
  from the measured calibration records and from the analytical models,
  so the artifact shows what calibration changes about the split.

All calibration in this benchmark runs against a **temporary store**
(the process's ``REPRO_CALIBRATION_PATH`` is pointed at a scratch file
and restored afterwards), so benchmarking never pollutes the per-host
store that real runs consult.

``--check`` is the regression gate: on a host with numba the JIT backend
must reach ``REPRO_BENCH_NUMBA_FLOOR`` (default 2.0) times the numpy
``detect()`` throughput at k=3; without numba the gate reports a skip
and passes (the numpy fallback is covered by the equivalence tests).

Run standalone (``PYTHONPATH=src python benchmarks/bench_backends.py``)
or through pytest; both paths emit the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: Where the artifact lands (the repository root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

#: Environment override of the numba end-to-end speedup floor.
FLOOR_ENV = "REPRO_BENCH_NUMBA_FLOOR"

#: Required detect() k=3 speedup of numba over numpy (the acceptance gate).
DEFAULT_NUMBA_FLOOR = 2.0


def _available_backends() -> dict:
    from repro.backends import list_backends

    return {
        row["name"]: row["detail"] for row in list_backends() if row["available"]
    }


def _probe_matrix(quick: bool, repeats: int) -> list[dict]:
    """Calibration probes per backend x family x order x layout."""
    from repro.backends import get_backend, run_probe

    orders = (2, 3) if quick else (2, 3, 4)
    n_snps, n_samples = (32, 1024) if quick else (48, 4096)
    entries = []
    for name in sorted(_available_backends()):
        backend = get_backend(name)
        for family in ("naive", "split"):
            for order in orders:
                for layout in ("u32", "u64"):
                    for fused in (False, True):
                        record = run_probe(
                            backend,
                            family=family,
                            order=order,
                            layout=layout,
                            n_snps=n_snps,
                            n_samples=n_samples,
                            repeats=repeats,
                            fused=fused,
                        )
                        entries.append(
                            {
                                "key": f"{name}/{record.family}/k{order}/{layout}",
                                "backend": name,
                                "family": record.family,
                                "order": order,
                                "layout": layout,
                                "combos_per_second": record.combos_per_second,
                                "elements_per_second": record.elements_per_second,
                                "probe_seconds": record.probe_seconds,
                            }
                        )
    return entries


def _end_to_end(quick: bool, repeats: int) -> dict:
    """detect() k=3 combos/s per available CPU backend."""
    from repro.backends import BACKENDS
    from repro.core import EpistasisDetector
    from repro.core.encoding_cache import ENCODING_CACHE
    from repro.datasets import SyntheticConfig, generate_dataset

    shape = (40, 2048) if quick else (56, 16384)
    dataset = generate_dataset(
        SyntheticConfig(n_snps=shape[0], n_samples=shape[1], seed=2026)
    )
    ENCODING_CACHE.clear()
    names = [
        name
        for name in ("numpy", "numba")
        if name in _available_backends() and BACKENDS[name].kind == "cpu"
    ]
    results: dict = {}
    for name in names:
        for fused in ("off", "on"):
            detector = EpistasisDetector(
                order=3, top_k=5, backend=name, fused=fused
            )
            result = detector.detect(dataset)  # warm-up: JIT + encoding cache
            total = result.stats.n_combinations
            best = float("inf")
            for _ in range(max(1, repeats)):
                started = time.perf_counter()
                detector.detect(dataset)
                best = min(best, time.perf_counter() - started)
            label = name if fused == "off" else f"{name}_fused"
            results[label] = {
                "seconds": best,
                "combinations": total,
                "combos_per_second": total / best,
            }
        results[f"speedup_fused_{name}"] = (
            results[f"{name}_fused"]["combos_per_second"]
            / results[name]["combos_per_second"]
        )
    if "numba" in results:
        results["speedup_numba_vs_numpy"] = (
            results["numba"]["combos_per_second"]
            / results["numpy"]["combos_per_second"]
        )
    return {
        "dataset": {"n_snps": shape[0], "n_samples": shape[1]},
        **results,
    }


def _carm_split(store_path: str, quick: bool, repeats: int) -> dict:
    """cpu+gpu CARM shares: measured calibration records vs the models."""
    from repro.backends import CalibrationStore, calibrate, resolve_backend_name
    from repro.bitops.packing import get_layout
    from repro.engine import parse_devices
    from repro.engine.policies import CarmRatioPolicy

    layout = get_layout(None)
    calibrate(
        families=("split",),
        orders=(3,),
        layout=layout,
        store=CalibrationStore(store_path),
        repeats=repeats,
    )
    devices = parse_devices("cpu+gpu")
    backend = resolve_backend_name()
    total = 100_000
    shares = {}
    for label, use_measured in (("measured", None), ("modelled", False)):
        policy = CarmRatioPolicy(use_measured=use_measured)
        policy.configure(
            n_snps=48 if not quick else 32,
            n_samples=4096 if not quick else 1024,
            order=3,
        )
        policy.configure_execution(backend=backend, word_layout=layout.name)
        shares[label] = policy.shares(total, devices)
        shares[f"{label}_sources"] = list(policy.weight_sources)
    return {
        "devices": "cpu+gpu",
        "cpu_backend": backend,
        "layout": layout.name,
        "total": total,
        **shares,
    }


def run_benchmark(quick: bool = False, repeats: int = 3) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-calib-") as tmp:
        store_path = os.path.join(tmp, "calibration.json")
        saved = os.environ.get("REPRO_CALIBRATION_PATH")
        os.environ["REPRO_CALIBRATION_PATH"] = store_path
        try:
            return {
                "quick": bool(quick),
                "available": _available_backends(),
                "probes": _probe_matrix(quick, repeats),
                "end_to_end": _end_to_end(quick, repeats),
                "carm_split": _carm_split(store_path, quick, repeats),
            }
        finally:
            if saved is None:
                os.environ.pop("REPRO_CALIBRATION_PATH", None)
            else:
                os.environ["REPRO_CALIBRATION_PATH"] = saved


def run_artifact(repeats: int = 3) -> dict:
    from repro.telemetry import host_metadata

    return {
        "benchmark": "backends",
        "numpy": np.__version__,
        "host": host_metadata(),
        "full": run_benchmark(quick=False, repeats=repeats),
    }


def check_gate(doc: dict) -> int:
    """The --check gate: probe sanity plus the numba speedup floor."""
    failures = []
    for entry in doc["probes"]:
        if not entry["combos_per_second"] > 0:
            failures.append(f"probe {entry['key']}: non-positive throughput")
    e2e = doc["end_to_end"]
    if "numba" in e2e:
        floor = float(os.environ.get(FLOOR_ENV, DEFAULT_NUMBA_FLOOR))
        speedup = e2e["speedup_numba_vs_numpy"]
        print(f"numba detect() k=3 speedup: {speedup:.2f}x (floor {floor:.2f}x)")
        if speedup < floor:
            failures.append(
                f"numba end-to-end speedup {speedup:.2f}x below the "
                f"{floor:.2f}x floor (override via {FLOOR_ENV})"
            )
    else:
        print("numba not available: speedup gate skipped (numpy fallback only)")
    if failures:
        print("backend benchmark gate failed:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"backend gate OK ({len(doc['probes'])} probes)")
    return 0


def emit(doc: dict, path: Path = ARTIFACT) -> None:
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    e2e = doc["full"]["end_to_end"]
    for name in ("numpy", "numba"):
        if name in e2e:
            print(f"detect() k=3 [{name}]: {e2e[name]['combos_per_second']:,.0f} combos/s")
            print(
                f"detect() k=3 [{name}, fused]: "
                f"{e2e[f'{name}_fused']['combos_per_second']:,.0f} combos/s "
                f"({e2e[f'speedup_fused_{name}']:.2f}x)"
            )
    split = doc["full"]["carm_split"]
    print(
        f"carm cpu+gpu split of {split['total']}: measured {split['measured']} "
        f"({'/'.join(split['measured_sources'])}), "
        f"modelled {split['modelled']}"
    )


def test_backends_benchmark_smoke():
    """Pytest entry point: quick run satisfies the gate and the artifact shape."""
    doc = run_benchmark(quick=True, repeats=1)
    assert check_gate(doc) == 0
    assert doc["carm_split"]["measured_sources"][0] == "measured"
    assert doc["carm_split"]["modelled_sources"] == ["model", "model"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI-sized run (printed, not written to the artifact)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repetitions per timing"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the quick matrix and apply the regression gate: with "
        "numba installed, detect() k=3 must be >= the speedup floor "
        f"(default {DEFAULT_NUMBA_FLOOR}x over numpy; override via "
        f"{FLOOR_ENV}). Does not write the artifact",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_gate(run_benchmark(quick=True, repeats=args.repeats))
    if args.quick:
        doc = run_benchmark(quick=True, repeats=args.repeats)
        print(json.dumps({k: v for k, v in doc["end_to_end"].items()}, indent=2))
        return 0
    emit(run_artifact(repeats=args.repeats))
    return 0


if __name__ == "__main__":
    sys.exit(main())
