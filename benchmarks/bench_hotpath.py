"""Hot-path benchmark: word width x K2 lookup table x kernel family.

Measures the evaluation hot path before and after the overhaul, in one
process on one machine so the comparison is honest:

* **before** — a faithful replica of the *pre-PR* hot path
  (:class:`PrePrVectorizedApproach` below): ``uint32`` packed words, the
  unfused ``popcount().astype(int64).sum()`` reduction, the blocked kernel
  re-gathering and re-NOR-expanding every BP-sized sample pass, and
  closed-form ``gammaln`` K2 scoring (``K2Score(precompute=False)``);
* **after** — the overhauled path: ``uint64`` packed words (halving the
  element count of every AND/POPCNT), fused popcount reduction,
  gather-once blocked kernel and the per-dataset log-factorial K2 table.

The dataset uses the paper's reference sample count (16384, the §V
workload the CARM splitter is also sized for), where the word-level kernel
work dominates the fixed per-batch overheads.

Two families of numbers are recorded into ``BENCH_hotpath.json``:

* ``kernels`` — raw table-construction + scoring throughput (tables/s) per
  kernel family (naive / split), word width, interaction order (2..4) and
  objective, measured on explicit combination batches;
* ``end_to_end`` — full ``detect()`` throughput at the paper's ``k = 3``
  (combinations/s through the engine, scheduler and top-k reduction) for
  the before/after configurations, the ``chunk_size="auto"`` tuner and
  the fused build+score path (``fused="on"``), with the before/after
  speedup that the acceptance gate (>= 1.5x) reads and the fused-vs-
  unfused ratio the self-normalizing fused gate reads.

``--quick`` shrinks the dataset/orders for the CI smoke job, and
``--check`` compares the *normalized* throughput of a fresh run against
the committed artifact, failing on a >30% regression.  The check normalizes
every entry by the same run's uint32 k=3 split-kernel reference, so it
detects code regressions without tripping on absolute machine speed.

Run standalone (``PYTHONPATH=src python benchmarks/bench_hotpath.py``) or
through pytest; both paths emit the artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import EpistasisDetector
from repro.core.approaches.cpu_vectorized import CpuVectorizedApproach
from repro.core.combinations import generate_combinations
from repro.core.encoding_cache import ENCODING_CACHE
from repro.core.scoring import K2Score, get_objective
from repro.datasets import SyntheticConfig, generate_dataset

#: Where the artifact lands (the repository root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: Kernel families and the approach that exercises each.
FAMILIES = {"naive": "cpu-v1", "split": "cpu-v2"}

#: Regression tolerance of ``--check`` (fraction of the baseline).
CHECK_TOLERANCE = 0.30

#: The entry every throughput is normalized by in ``--check`` mode.
REFERENCE_KEY = "split/u32/k3/k2"

#: Per-backend gate of ``--check``: a compiled CPU backend may not run the
#: split/k3 probe slower than this fraction of the numpy reference (a JIT
#: backend losing to the interpreter is a regression, machine-independent).
BACKEND_CHECK_FLOOR = 1.0

#: Fused gate of ``--check`` on the numpy backend: the tiled fused path
#: must be no slower than the unfused path in the same run (0.95 leaves a
#: small margin for timing noise; measured, fusion is a clear win).
NUMPY_FUSED_FLOOR = 0.95

#: Fused gate of ``--check`` on compiled backends: the in-kernel fused
#: ``detect()`` must beat the unfused one by this factor in the same run
#: (runs on hosts with numba installed, e.g. the optional-deps CI job).
FUSED_BACKEND_FLOOR = 1.5

#: Telemetry gate of ``--check``: a ``telemetry="full"`` detect() may not
#: fall below this fraction of the ``telemetry="off"`` throughput measured
#: in the same run.  (The "off is free" half of the claim is covered by
#: :func:`check_against_baseline`: every other configuration runs with
#: telemetry off, so any off-mode overhead trips the 30% gate against the
#: pre-telemetry baseline.)
TELEMETRY_CHECK_FLOOR = 0.95


def _dataset(quick: bool):
    if quick:
        return generate_dataset(SyntheticConfig(n_snps=40, n_samples=2048, seed=2026))
    return generate_dataset(SyntheticConfig(n_snps=56, n_samples=16384, seed=2026))


# ---------------------------------------------------------------------------
# Pre-PR baseline replica: the seed hot path, kept verbatim (uint32 words,
# unfused popcount reduction, per-pass re-gather in the blocked kernel) so
# the before/after comparison always measures against the same reference,
# on the same machine, in the same run.
# ---------------------------------------------------------------------------


def _legacy_popcount32(words: np.ndarray) -> np.ndarray:
    from repro.bitops.popcount import HAS_BITWISE_COUNT, popcount_lut

    arr = np.asarray(words)
    if arr.dtype != np.uint32:
        arr = arr.astype(np.uint32)
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(arr).astype(np.int64)
    return popcount_lut(arr)  # the seed's NumPy<2 fallback


def _legacy_split_class_counts(class_planes, padding_mask, combos) -> np.ndarray:
    combos = np.asarray(combos, dtype=np.int64)
    order = combos.shape[1]
    n_combos = combos.shape[0]
    mask = np.asarray(padding_mask, dtype=np.uint32)

    def expand(planes_sel):
        g2 = np.bitwise_and(
            np.bitwise_not(np.bitwise_or(planes_sel[:, 0], planes_sel[:, 1])), mask
        )
        return np.concatenate([planes_sel, g2[:, None, :]], axis=1)

    selected = [expand(class_planes[combos[:, t]]) for t in range(order)]

    def grid_of(stacks):
        grid = stacks[0]
        cells = 3
        for planes in stacks[1:]:
            grid = np.bitwise_and(grid[:, :, None, :], planes[:, None, :, :])
            cells *= 3
            grid = grid.reshape(n_combos, cells, grid.shape[-1])
        return grid

    cells = 3**order
    sub_cells = cells // 3
    counts = np.empty((n_combos, cells), dtype=np.int64)
    sub_grid = grid_of(selected[1:])
    for g0 in range(3):
        head = selected[0][:, g0, :]
        grid = np.bitwise_and(head[:, None, :], sub_grid)
        span = slice(g0 * sub_cells, (g0 + 1) * sub_cells)
        counts[:, span] = _legacy_popcount32(grid).sum(axis=-1)
    return counts


class PrePrVectorizedApproach(CpuVectorizedApproach):
    """The seed cpu-v4: uint32 words, per-pass re-gather, unfused popcount."""

    name = "cpu-v4-pre-pr"

    def __init__(self) -> None:
        super().__init__(word_layout="u32")

    def build_tables(self, encoded, combos):
        combos = self._check_combos(combos)
        split = encoded.split
        n_combos, order = combos.shape
        words_per_chunk = max(1, encoded.block_samples // 32)
        tables = np.zeros((n_combos, 3**order, 2), dtype=np.int64)
        for phenotype_class in (0, 1):
            planes, _ = split.planes_for_class(phenotype_class)
            mask = split.padding_mask(phenotype_class)
            n_words = planes.shape[2]
            for start in range(0, n_words, words_per_chunk):
                stop = min(start + words_per_chunk, n_words)
                tables[:, :, phenotype_class] += _legacy_split_class_counts(
                    planes[:, :, start:stop], mask[start:stop], combos
                )
        return tables


def _objective(name: str, dataset, precompute: bool):
    if name == "k2":
        objective = K2Score(precompute=precompute)
    else:
        objective = get_objective(name)
    prepare = getattr(objective, "prepare", None)
    if prepare is not None:
        prepare(dataset)
    return objective


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def measure_kernels(dataset, quick: bool, repeats: int = 3) -> list[dict]:
    """Tables/s per (family, word width, order, objective) batch kernel."""
    from repro.core.approaches import get_approach

    orders = (2, 3) if quick else (2, 3, 4)
    batches = {2: 1024, 3: 1024} if quick else {2: 2048, 3: 2048, 4: 512}
    objectives = ("k2",) if quick else ("k2", "gini")
    entries = []
    for family, approach_name in FAMILIES.items():
        for order in orders:
            combos = generate_combinations(dataset.n_snps, order)[: batches[order]]
            for layout in ("u32", "u64"):
                approach = get_approach(approach_name, word_layout=layout)
                encoded = approach.prepare(dataset)
                for obj_name in objectives:
                    # The kernel matrix is a pure word-width axis: both
                    # layouts score through the same (lookup) objective.
                    # The gammaln-vs-lookup axis is measured separately by
                    # the end-to-end before/after configurations.
                    objective = _objective(obj_name, dataset, precompute=True)

                    def run():
                        objective.score(approach.build_tables(encoded, combos))

                    run()  # warm-up
                    seconds = _time_best(run, repeats)
                    entries.append(
                        {
                            "key": f"{family}/{layout}/k{order}/{obj_name}",
                            "family": family,
                            "approach": approach_name,
                            "word_layout": layout,
                            "order": order,
                            "objective": obj_name,
                            "batch": int(combos.shape[0]),
                            "seconds": seconds,
                            "tables_per_second": combos.shape[0] / seconds,
                        }
                    )
    return entries


def measure_end_to_end(dataset, quick: bool, repeats: int = 3) -> dict:
    """Full ``detect()`` at k=3: pre-PR replica vs overhauled vs autotuned."""
    # fused="off" everywhere except the fused configuration: the default
    # ("auto") activates the fused build+score path, which would silently
    # turn the pre-PR replica and the unfused denominators into fused runs.
    configs = {
        "before_pre_pr_u32_gammaln": dict(
            approach=PrePrVectorizedApproach(),
            objective=K2Score(precompute=False),
            fused="off",
        ),
        "after_u64_lookup": dict(
            approach="cpu-v4", word_layout="u64", objective="k2", fused="off"
        ),
        "after_u64_lookup_autochunk": dict(
            approach="cpu-v4",
            word_layout="u64",
            objective="k2",
            chunk_size="auto",
            fused="off",
        ),
        "after_u64_lookup_fused": dict(
            approach="cpu-v4", word_layout="u64", objective="k2", fused="on"
        ),
    }
    total = None
    results = {}
    for label, overrides in configs.items():
        detector = EpistasisDetector(order=3, top_k=5, **overrides)

        def run():
            return detector.detect(dataset)

        result = run()  # warm-up (also warms the encoding cache)
        total = result.stats.n_combinations
        seconds = _time_best(run, repeats)
        results[label] = {
            "seconds": seconds,
            "combinations": total,
            "combos_per_second": total / seconds,
        }
    results["speedup_after_vs_before"] = (
        results["after_u64_lookup"]["combos_per_second"]
        / results["before_pre_pr_u32_gammaln"]["combos_per_second"]
    )
    results["speedup_fused_vs_unfused"] = (
        results["after_u64_lookup_fused"]["combos_per_second"]
        / results["after_u64_lookup"]["combos_per_second"]
    )
    return results


def run_benchmark(quick: bool = False, repeats: int = 3) -> dict:
    dataset = _dataset(quick)
    ENCODING_CACHE.clear()
    kernels = measure_kernels(dataset, quick, repeats)
    end_to_end = measure_end_to_end(dataset, quick, repeats)
    return {
        "quick": bool(quick),
        "dataset": {"n_snps": dataset.n_snps, "n_samples": dataset.n_samples},
        "kernels": kernels,
        "end_to_end": end_to_end,
    }


def run_artifact(repeats: int = 3) -> dict:
    """The committed artifact: the full matrix plus the CI-sized quick run.

    Both sections are measured so the ``--check`` smoke job can compare a
    fresh quick run against a baseline of the same dataset scale.
    """
    from repro.telemetry import host_metadata

    return {
        "benchmark": "hotpath",
        "numpy": np.__version__,
        "host": host_metadata(),
        "full": run_benchmark(quick=False, repeats=repeats),
        "quick_baseline": run_benchmark(quick=True, repeats=repeats),
    }


def _normalized(doc: dict) -> dict:
    """Per-entry throughput divided by the run's own u32 reference entry."""
    by_key = {e["key"]: e["tables_per_second"] for e in doc["kernels"]}
    ref = by_key.get(REFERENCE_KEY)
    if not ref:
        raise SystemExit(f"reference entry {REFERENCE_KEY} missing from run")
    return {k: v / ref for k, v in by_key.items()}


def check_against_baseline(doc: dict, baseline_path: Path) -> int:
    """Fail (return 1) on a >30% normalized-throughput regression.

    ``doc`` must be a quick run; it is compared against the committed
    artifact's ``quick_baseline`` section (same dataset scale, throughput
    normalized within each run so machine speed cancels out).
    """
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression check")
        return 0
    baseline = json.loads(baseline_path.read_text())["quick_baseline"]
    current = _normalized(doc)
    reference = _normalized(baseline)
    failures = []
    for key, base_value in reference.items():
        now = current.get(key)
        if now is None:
            continue  # quick runs carry a subset of the full matrix
        if now < base_value * (1.0 - CHECK_TOLERANCE):
            failures.append(f"{key}: {now:.3f}x vs baseline {base_value:.3f}x")
    speedup = doc["end_to_end"]["speedup_after_vs_before"]
    base_speedup = baseline["end_to_end"]["speedup_after_vs_before"]
    if speedup < base_speedup * (1.0 - CHECK_TOLERANCE):
        failures.append(
            f"end-to-end speedup: {speedup:.2f}x vs baseline {base_speedup:.2f}x"
        )
    if failures:
        print("hot-path benchmark regression (>30% vs committed baseline):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(
        f"regression check OK ({len(reference)} entries, end-to-end "
        f"{speedup:.2f}x vs baseline {base_speedup:.2f}x)"
    )
    return 0


def check_fused(doc: dict) -> int:
    """Self-normalizing fused gate on the numpy backend.

    The tiled fused path must not lose to the unfused path measured in the
    same run — no committed baseline involved, so machine speed cancels.
    """
    ratio = doc["end_to_end"]["speedup_fused_vs_unfused"]
    print(f"fused vs unfused detect() (numpy tiled): {ratio:.2f}x")
    if ratio < NUMPY_FUSED_FLOOR:
        print(
            f"fused regression: numpy tiled fused path at {ratio:.2f}x "
            f"unfused (floor {NUMPY_FUSED_FLOOR:.2f}x)"
        )
        return 1
    return 0


def _fused_detect_rate(backend: str, fused: str, dataset, repeats: int) -> float:
    detector = EpistasisDetector(
        order=3, top_k=5, backend=backend, word_layout="u64", fused=fused
    )
    result = detector.detect(dataset)  # warm-up: JIT + encoding cache
    total = result.stats.n_combinations
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        detector.detect(dataset)
        best = min(best, time.perf_counter() - started)
    return total / best


def check_backends(repeats: int = 2) -> int:
    """Per-backend regression gate of ``--check``.

    Probes the split/k3 kernel through every *available* CPU execution
    backend (:mod:`repro.backends`) and fails when a compiled backend
    falls below :data:`BACKEND_CHECK_FLOOR` times the numpy reference
    measured in the same run — self-normalizing, so no committed baseline
    is needed.  On a numpy-only host the gate reports a skip.

    On top of the probe gate, every compiled backend runs a fused-vs-
    unfused ``detect()`` pair at k=3: the in-kernel fused path must reach
    :data:`FUSED_BACKEND_FLOOR` times the unfused throughput of the same
    backend in the same run.
    """
    from repro.backends import get_backend, list_backends, run_probe

    names = [
        row["name"]
        for row in list_backends()
        if row["available"] and row["kind"] == "cpu"
    ]
    if names == ["numpy"]:
        print("per-backend gate: only numpy available, skipped")
        return 0
    rates = {}
    for name in names:
        record = run_probe(
            get_backend(name),
            family="split",
            order=3,
            n_snps=32,
            n_samples=2048,
            repeats=repeats,
        )
        rates[name] = record.combos_per_second
    failures = []
    for name, rate in rates.items():
        if name == "numpy":
            continue
        ratio = rate / rates["numpy"]
        print(f"per-backend gate: {name} split/k3 at {ratio:.2f}x numpy")
        if ratio < BACKEND_CHECK_FLOOR:
            failures.append(
                f"{name}: {ratio:.2f}x numpy (floor {BACKEND_CHECK_FLOOR:.2f}x)"
            )
    from repro.datasets import SyntheticConfig, generate_dataset

    dataset = generate_dataset(
        SyntheticConfig(n_snps=40, n_samples=2048, seed=2026)
    )
    for name in rates:
        if name == "numpy":
            continue  # numpy's fused gate is check_fused (floor: no slower)
        unfused = _fused_detect_rate(name, "off", dataset, repeats)
        fused = _fused_detect_rate(name, "on", dataset, repeats)
        ratio = fused / unfused
        print(f"fused gate: {name} detect() k=3 fused at {ratio:.2f}x unfused")
        if ratio < FUSED_BACKEND_FLOOR:
            failures.append(
                f"{name} fused: {ratio:.2f}x unfused "
                f"(floor {FUSED_BACKEND_FLOOR:.2f}x)"
            )
    if failures:
        print("per-backend regression gate failed:")
        for line in failures:
            print(f"  {line}")
        return 1
    return 0


def check_telemetry(repeats: int = 2) -> int:
    """Telemetry-overhead gate of ``--check``.

    Measures ``detect()`` at k=3 with ``telemetry="off"`` and
    ``telemetry="full"`` in the same run (same dataset, same warmed
    encoding cache) and fails when full-mode tracing costs more than
    ``1 - TELEMETRY_CHECK_FLOOR`` of the off-mode throughput —
    self-normalizing, so machine speed cancels out.
    """
    dataset = generate_dataset(
        SyntheticConfig(n_snps=40, n_samples=2048, seed=2026)
    )
    rates = {}
    for mode in ("off", "full"):
        detector = EpistasisDetector(
            order=3, top_k=5, word_layout="u64", telemetry=mode
        )
        result = detector.detect(dataset)  # warm-up: encoding cache
        total = result.stats.n_combinations
        best = float("inf")
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            detector.detect(dataset)
            best = min(best, time.perf_counter() - started)
        rates[mode] = total / best
    ratio = rates["full"] / rates["off"]
    print(f"telemetry gate: detect() k=3 full tracing at {ratio:.2f}x off")
    if ratio < TELEMETRY_CHECK_FLOOR:
        print(
            f"telemetry overhead regression: full tracing at {ratio:.2f}x "
            f"off-mode throughput (floor {TELEMETRY_CHECK_FLOOR:.2f}x)"
        )
        return 1
    return 0


def emit(doc: dict, path: Path = ARTIFACT) -> None:
    path.write_text(json.dumps(doc, indent=2) + "\n")
    e2e = doc["full"]["end_to_end"]
    print(f"wrote {path}")
    print(
        f"end-to-end k=3 detect(): "
        f"{e2e['before_pre_pr_u32_gammaln']['combos_per_second']:.0f} -> "
        f"{e2e['after_u64_lookup']['combos_per_second']:.0f} combos/s "
        f"({e2e['speedup_after_vs_before']:.2f}x)"
    )
    print(
        f"fused build+score: "
        f"{e2e['after_u64_lookup_fused']['combos_per_second']:.0f} combos/s "
        f"({e2e['speedup_fused_vs_unfused']:.2f}x over unfused)"
    )


def test_hotpath_benchmark_smoke():
    """Pytest entry point: a quick run must show the overhaul winning and
    stay within the regression tolerance of the committed baseline."""
    doc = run_benchmark(quick=True, repeats=2)
    assert doc["end_to_end"]["speedup_after_vs_before"] > 1.0
    assert check_against_baseline(doc, ARTIFACT) == 0
    assert check_fused(doc) == 0
    assert check_backends(repeats=1) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI-sized run (printed, not written to the artifact)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repetitions per timing"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the quick matrix and compare it against the committed "
        "BENCH_hotpath.json, failing on a >30%% normalized regression "
        "(does not overwrite the artifact)",
    )
    args = parser.parse_args(argv)
    if args.check:
        doc = run_benchmark(quick=True, repeats=args.repeats)
        e2e = doc["end_to_end"]
        print(
            f"measured end-to-end speedup (quick): "
            f"{e2e['speedup_after_vs_before']:.2f}x"
        )
        return (
            check_against_baseline(doc, ARTIFACT)
            or check_fused(doc)
            or check_backends(args.repeats)
            or check_telemetry(args.repeats)
        )
    if args.quick:
        doc = run_benchmark(quick=True, repeats=args.repeats)
        e2e = doc["end_to_end"]
        print(json.dumps(doc["dataset"]))
        print(
            f"quick end-to-end k=3 speedup: "
            f"{e2e['speedup_after_vs_before']:.2f}x (not written)"
        )
        return 0
    emit(run_artifact(repeats=args.repeats))
    return 0


if __name__ == "__main__":
    sys.exit(main())
