"""Order-scaling benchmark of the order-generic search core.

Measures frequency-table construction throughput (tables/s, i.e. evaluated
SNP combinations per second) at interaction orders k = 2, 3 and 4 for the
best CPU approach (``cpu-v4``, vectorised) and the best GPU approach
(``gpu-v4``, tiled), and writes the result to ``BENCH_order.json`` at the
repository root to seed the performance trajectory of later PRs.

Run standalone (``PYTHONPATH=src python benchmarks/bench_order_scaling.py``)
or through pytest (``pytest benchmarks/bench_order_scaling.py``); both paths
emit the artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.approaches import get_approach
from repro.core.combinations import combination_count, generate_combinations
from repro.datasets import SyntheticConfig, generate_dataset

#: Interaction orders of the sweep.
ORDERS = (2, 3, 4)

#: Approaches of the sweep: the best CPU and the best GPU variant.
APPROACH_NAMES = ("cpu-v4", "gpu-v4")

#: Combinations per timed batch, capped so the k=4 sweep stays quick.
BATCH = 2048

#: Where the artifact lands (the repository root).
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_order.json"


def _bench_dataset():
    return generate_dataset(SyntheticConfig(n_snps=48, n_samples=2048, seed=2024))


def measure_order_scaling(repeats: int = 3) -> dict:
    """Time table construction for every (approach, order) pair.

    Returns the JSON-ready result document: per entry the order, approach,
    batch size, best-of-``repeats`` wall-clock seconds and the derived
    tables/s throughput.
    """
    dataset = _bench_dataset()
    entries = []
    for name in APPROACH_NAMES:
        approach = get_approach(name)
        encoded = approach.prepare(dataset)
        for order in ORDERS:
            total = combination_count(dataset.n_snps, order)
            combos = generate_combinations(
                dataset.n_snps, order, start_rank=0, count=min(BATCH, total)
            )
            approach.build_tables(encoded, combos)  # warm-up
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                approach.build_tables(encoded, combos)
                best = min(best, time.perf_counter() - started)
            entries.append(
                {
                    "approach": name,
                    "order": order,
                    "n_snps": dataset.n_snps,
                    "n_samples": dataset.n_samples,
                    "batch_combinations": int(combos.shape[0]),
                    "cells_per_table": 3**order,
                    "seconds_per_batch": best,
                    "tables_per_second": combos.shape[0] / best,
                }
            )
    return {
        "benchmark": "order_scaling",
        "unit": "tables/s (SNP combinations evaluated per second)",
        "entries": entries,
    }


def write_artifact(result: dict) -> Path:
    ARTIFACT.write_text(json.dumps(result, indent=2) + "\n", encoding="utf-8")
    return ARTIFACT


def test_order_scaling_emits_artifact():
    """Pytest entry point: run the sweep, emit the JSON, sanity-check it."""
    result = measure_order_scaling(repeats=2)
    path = write_artifact(result)
    assert path.exists()
    entries = result["entries"]
    assert {(e["approach"], e["order"]) for e in entries} == {
        (a, k) for a in APPROACH_NAMES for k in ORDERS
    }
    assert all(e["tables_per_second"] > 0 for e in entries)
    # Larger tables cost more work per combination: at fixed batch size the
    # per-table throughput must decay monotonically with the order.
    for name in APPROACH_NAMES:
        rates = [
            e["tables_per_second"]
            for e in sorted(
                (e for e in entries if e["approach"] == name),
                key=lambda e: e["order"],
            )
        ]
        assert rates[0] > rates[-1]


if __name__ == "__main__":
    doc = measure_order_scaling()
    path = write_artifact(doc)
    print(f"wrote {path}")
    for entry in doc["entries"]:
        print(
            f"{entry['approach']:>7s}  k={entry['order']}  "
            f"{entry['tables_per_second']:>12.0f} tables/s"
        )
