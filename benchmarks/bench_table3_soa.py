"""Table III — comparison with the state of the art.

The artefact is the paper-vs-reproduction comparison table (throughputs and
speedups for MPI3SNP, [29] and [30]).  The benchmark timings measure the
functional MPI3SNP-style baseline against the best approach on the same
dataset, so a *measured* speedup accompanies the modelled one.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.baselines import Mpi3snpBaseline
from repro.core import EpistasisDetector
from repro.devices.catalog import device
from repro.experiments.table3 import format_table3, run_table3, summary_speedups


def test_table3_regeneration(benchmark):
    rows = benchmark(run_table3)
    assert len(rows) == 15
    # Every measured MPI3SNP row must show this work ahead, with the gap
    # growing from the 10000-SNP to the 40000-SNP dataset on the GPUs.
    mpi = {
        (r["device"], r["n_snps"]): r for r in rows if r["baseline"] == "mpi3snp"
    }
    for dev in ("GN2", "GN3", "CI3", "CA2"):
        assert mpi[(dev, 10000)]["repro_speedup"] > 1.0
    assert mpi[("GN2", 40000)]["repro_speedup"] > mpi[("GN2", 10000)]["repro_speedup"]
    assert mpi[("GN3", 40000)]["repro_speedup"] > mpi[("GN3", 10000)]["repro_speedup"]
    # Against the hand-tuned CUDA tool [29] the model stays within ~±20%.
    nobre = {r["device"]: r for r in rows if r["baseline"] == "nobre2020"}
    for dev in ("GN1", "GN2", "GN3", "GN4"):
        assert 0.75 < nobre[dev]["repro_speedup"] < 1.25
    # Against [30] the gap is roughly an order of magnitude (paper: 10.5x).
    campos = {r["device"]: r for r in rows if r["baseline"] == "campos2020"}
    assert campos["GI1"]["repro_speedup"] > 5.0
    agg = summary_speedups()
    assert agg["overall_mean_speedup"] > 1.5
    write_artifact("table3_soa.txt", format_table3())


def test_table3_measured_speedup_vs_mpi3snp(benchmark, small_dataset):
    """Measured wall-clock speedup of cpu-v4 over the MPI3SNP-style baseline."""
    baseline = Mpi3snpBaseline(n_ranks=2, chunk_size=1024)
    ours = EpistasisDetector(approach="cpu-v4", n_workers=2, chunk_size=1024)

    baseline_result = baseline.detect(small_dataset)
    ours_result = benchmark(ours.detect, small_dataset)

    assert ours_result.best_snps == baseline_result.best_snps
    assert ours_result.stats.elements == baseline_result.stats.elements
